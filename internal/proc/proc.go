// Package proc provides the task-level processor model used by the
// application studies: an execution-driven CPU whose programs are Go
// functions that issue loads, stores, and compute work against the
// simulated memory hierarchy.
//
// The model's job is accounting. Every operation advances the processor's
// clock and lands in one of four buckets:
//
//   - compute time: instruction issue (the application's real work)
//   - memory-stall time: waiting on the cache/bus/DRAM for its own accesses
//   - non-overlap time: waiting for Active-Page computation (the paper's
//     processor-memory non-overlap metric, Figure 4)
//   - mediation time: servicing inter-page communication interrupts on
//     behalf of the Active-Page memory system (Section 3)
//
// The same application algorithms run against a conventional configuration
// (no Active Pages) and a RADram configuration; the buckets produce every
// derived quantity in the paper's evaluation.
package proc

import (
	"activepages/internal/mem"
	"activepages/internal/memsys"
	"activepages/internal/obs"
	"activepages/internal/sim"
)

// Config describes the processor.
type Config struct {
	// ClockHz is the core clock (Table 1 reference: 1 GHz).
	ClockHz uint64
	// FPMulLatency is the charge, in cycles, of one floating-point multiply
	// issued by Compute-side code (pipelined FPU: throughput 1/cycle, so
	// the default charge is 1; latency is hidden by the paper's assumption
	// that the processor runs "at peak floating-point speeds" when fed).
	FPMulLatency uint64
}

// DefaultConfig returns the Table 1 reference processor.
func DefaultConfig() Config {
	return Config{ClockHz: 1_000_000_000, FPMulLatency: 1}
}

// Stats is the processor time ledger.
type Stats struct {
	ComputeTime    sim.Duration
	MemStallTime   sim.Duration
	NonOverlapTime sim.Duration
	MediationTime  sim.Duration

	Instructions uint64
	Loads        uint64
	Stores       uint64
	FPOps        uint64
}

// BusyTime is time the processor was doing useful work (compute plus
// mediation service).
func (s Stats) BusyTime() sim.Duration { return s.ComputeTime + s.MediationTime }

// TotalTime is the sum of all buckets.
func (s Stats) TotalTime() sim.Duration {
	return s.ComputeTime + s.MemStallTime + s.NonOverlapTime + s.MediationTime
}

// NonOverlapFraction is the share of total time spent stalled on Active-
// Page computation: the y-axis of Figure 4.
func (s Stats) NonOverlapFraction() float64 {
	t := s.TotalTime()
	if t == 0 {
		return 0
	}
	return float64(s.NonOverlapTime) / float64(t)
}

// CPU is the task-level processor.
type CPU struct {
	cfg   Config
	clock sim.Clock
	hier  *memsys.Hierarchy
	store *mem.Store
	now   sim.Time
	Stats Stats

	// ForceScalar makes the typed slice accessors issue one scalar access
	// per element instead of batching through AccessElems. The ledger must
	// come out identical either way; the equivalence tests flip this.
	ForceScalar bool

	// Interrupt, when set, is polled periodically from the access paths (and
	// once per Stream call). A non-nil return unwinds the simulated program
	// with a CancelPanic carrying that error; run.Map translates it back
	// into a clean error. The hook makes an in-flight simulation point
	// cancelable mid-run — without it, only point boundaries observe
	// cancellation. It must stay nil when cancellation is not in play so the
	// hot path pays a single predictable branch.
	Interrupt func() error
	intrOps   uint64

	// tracer is the tracing hook, nil when tracing is off; every use is
	// behind a nil check so the untraced hot path pays one branch at most.
	// Consecutive compute work (including the L1-hit share of accesses) is
	// coalesced into one open span, flushed when the processor stalls.
	tracer       *obs.Tracer
	computeStart sim.Time
	computeOpen  bool
}

// New builds a CPU over the hierarchy and backing store.
func New(cfg Config, h *memsys.Hierarchy, store *mem.Store) *CPU {
	if cfg.ClockHz == 0 {
		cfg = DefaultConfig()
	}
	if cfg.FPMulLatency == 0 {
		cfg.FPMulLatency = 1
	}
	return &CPU{cfg: cfg, clock: sim.NewClock(cfg.ClockHz), hier: h, store: store}
}

// Clock returns the core clock.
func (c *CPU) Clock() sim.Clock { return c.clock }

// Hierarchy returns the memory hierarchy the CPU issues into.
func (c *CPU) Hierarchy() *memsys.Hierarchy { return c.hier }

// Store returns the simulated backing store.
func (c *CPU) Store() *mem.Store { return c.store }

// Now returns the processor's current time.
func (c *CPU) Now() sim.Time { return c.now }

// SetTracer enables simulated-time tracing on the processor track:
// coalesced compute intervals, Active-Page waits, and mediation service.
// Passing nil disables it.
func (c *CPU) SetTracer(tr *obs.Tracer) {
	c.tracer = tr
	c.computeOpen = false
}

// markCompute opens (or extends) the running compute span at start.
func (c *CPU) markCompute(start sim.Time) {
	if !c.computeOpen {
		c.computeStart = start
		c.computeOpen = true
	}
}

// FlushTrace emits any pending compute span up to the current time. Call
// it when a traced run ends; it is harmless (and a no-op) otherwise.
func (c *CPU) FlushTrace() { c.flushCompute(c.now) }

// flushCompute closes the running compute span at end.
func (c *CPU) flushCompute(end sim.Time) {
	if c.computeOpen {
		c.computeOpen = false
		if end > c.computeStart {
			c.tracer.Span(obs.TIDCPU, "proc", "compute", c.computeStart, end-c.computeStart)
		}
	}
}

// Observe registers the processor's time ledger and operation counts
// under prefix (conventionally "proc").
func (c *CPU) Observe(r *obs.Registry, prefix string) {
	r.Timer(prefix+".compute", func() sim.Duration { return c.Stats.ComputeTime })
	r.Timer(prefix+".mem_stall", func() sim.Duration { return c.Stats.MemStallTime })
	r.Timer(prefix+".non_overlap", func() sim.Duration { return c.Stats.NonOverlapTime })
	r.Timer(prefix+".mediation", func() sim.Duration { return c.Stats.MediationTime })
	r.Counter(prefix+".instructions", func() uint64 { return c.Stats.Instructions })
	r.Counter(prefix+".loads", func() uint64 { return c.Stats.Loads })
	r.Counter(prefix+".stores", func() uint64 { return c.Stats.Stores })
	r.Counter(prefix+".fp_ops", func() uint64 { return c.Stats.FPOps })
	// Elapsed time is a wall-style reading of this machine's clock, not an
	// accumulation, so it merges across runs by max, not sum.
	r.Gauge(prefix+".elapsed_ns", func() int64 { return int64(c.now / sim.Nanosecond) })
}

// Compute charges n instructions of busy time at one cycle each.
func (c *CPU) Compute(n uint64) {
	if c.tracer != nil {
		c.markCompute(c.now)
	}
	d := c.clock.Cycles(n)
	c.now += d
	c.Stats.ComputeTime += d
	c.Stats.Instructions += n
}

// ComputeFP charges n floating-point operations (multiply-class) plus their
// issue.
func (c *CPU) ComputeFP(n uint64) {
	if c.tracer != nil {
		c.markCompute(c.now)
	}
	d := c.clock.Cycles(n * c.cfg.FPMulLatency)
	c.now += d
	c.Stats.ComputeTime += d
	c.Stats.Instructions += n
	c.Stats.FPOps += n
}

// interruptMask paces the cancellation poll: one hook call per ~64K scalar
// accesses, cheap enough to disappear into the access cost yet fine-grained
// enough that a canceled point unwinds within a sliver of its runtime.
const interruptMask = 1<<16 - 1

// pollInterrupt runs the cancellation hook on its pacing schedule.
func (c *CPU) pollInterrupt() {
	if c.Interrupt == nil {
		return
	}
	if c.intrOps++; c.intrOps&interruptMask == 0 {
		if err := c.Interrupt(); err != nil {
			panic(CancelPanic{Err: err})
		}
	}
}

// access charges a data access, splitting hit time into compute and the
// remainder into memory stall.
func (c *CPU) access(addr, size uint64, kind memsys.AccessKind) {
	c.pollInterrupt()
	if c.tracer != nil {
		c.markCompute(c.now)
	}
	t := c.hier.Access(addr, size, kind)
	hit := c.hier.L1HitTime()
	if kind == memsys.UncachedRead || kind == memsys.UncachedWrite {
		hit = 0
	}
	if t < hit {
		hit = t
	}
	if c.tracer != nil && t > hit {
		// The access stalled: close the compute span at issue time; the
		// hierarchy has emitted the matching fill/uncached span.
		c.flushCompute(c.now)
	}
	c.now += t
	c.Stats.ComputeTime += hit
	c.Stats.MemStallTime += t - hit
	c.Stats.Instructions++
	if kind == memsys.Read || kind == memsys.UncachedRead {
		c.Stats.Loads++
	} else {
		c.Stats.Stores++
	}
}

// bulkAccess charges n consecutive elemBytes-wide data accesses in one
// pass. The ledger split is exactly n scalar access calls' worth: every
// cached access costs at least L1HitTime (a hit is L1HitTime, a miss is
// L1HitTime plus the lower levels), so each access's compute share is the
// full hit time and the remainder of the batch is memory stall.
func (c *CPU) bulkAccess(addr, elemBytes, n uint64, kind memsys.AccessKind) {
	if n == 0 {
		return
	}
	c.pollInterrupt()
	if c.tracer != nil {
		c.markCompute(c.now)
	}
	t := c.hier.AccessElems(addr, elemBytes, n, kind)
	var hitTotal sim.Duration
	if kind != memsys.UncachedRead && kind != memsys.UncachedWrite {
		hitTotal = sim.Duration(n) * c.hier.L1HitTime()
	}
	if c.tracer != nil && t > hitTotal {
		c.flushCompute(c.now)
	}
	c.now += t
	c.Stats.ComputeTime += hitTotal
	c.Stats.MemStallTime += t - hitTotal
	c.Stats.Instructions += n
	if kind == memsys.Read || kind == memsys.UncachedRead {
		c.Stats.Loads += n
	} else {
		c.Stats.Stores += n
	}
}

// The typed accessors perform a functional load/store on the backing store
// and charge its timing through the cache hierarchy.

// LoadU8 loads one byte.
func (c *CPU) LoadU8(addr uint64) uint8 {
	c.access(addr, 1, memsys.Read)
	return c.store.ByteAt(addr)
}

// LoadU16 loads a 16-bit value.
func (c *CPU) LoadU16(addr uint64) uint16 {
	c.access(addr, 2, memsys.Read)
	return c.store.ReadU16(addr)
}

// LoadU32 loads a 32-bit value.
func (c *CPU) LoadU32(addr uint64) uint32 {
	c.access(addr, 4, memsys.Read)
	return c.store.ReadU32(addr)
}

// LoadU64 loads a 64-bit value.
func (c *CPU) LoadU64(addr uint64) uint64 {
	c.access(addr, 8, memsys.Read)
	return c.store.ReadU64(addr)
}

// StoreU8 stores one byte.
func (c *CPU) StoreU8(addr uint64, v uint8) {
	c.access(addr, 1, memsys.Write)
	c.store.SetByte(addr, v)
}

// StoreU16 stores a 16-bit value.
func (c *CPU) StoreU16(addr uint64, v uint16) {
	c.access(addr, 2, memsys.Write)
	c.store.WriteU16(addr, v)
}

// StoreU32 stores a 32-bit value.
func (c *CPU) StoreU32(addr uint64, v uint32) {
	c.access(addr, 4, memsys.Write)
	c.store.WriteU32(addr, v)
}

// StoreU64 stores a 64-bit value.
func (c *CPU) StoreU64(addr uint64, v uint64) {
	c.access(addr, 8, memsys.Write)
	c.store.WriteU64(addr, v)
}

// ReadBlock loads n bytes into p, charged as sequential word reads through
// the caches.
func (c *CPU) ReadBlock(addr uint64, p []byte) {
	c.access(addr, uint64(len(p)), memsys.Read)
	c.store.Read(addr, p)
}

// WriteBlock stores p, charged as sequential word writes through the
// caches.
func (c *CPU) WriteBlock(addr uint64, p []byte) {
	c.access(addr, uint64(len(p)), memsys.Write)
	c.store.Write(addr, p)
}

// The typed slice accessors issue one timed access per element — exactly
// like a hand-written load/store loop — but batch the timing through
// AccessElems and move the bytes in one pass. Use them where the algorithm
// genuinely streams over consecutive elements; keep explicit loops where
// access interleaving matters.

// LoadU8Slice loads len(dst) consecutive bytes, one timed load each.
func (c *CPU) LoadU8Slice(addr uint64, dst []uint8) {
	if c.ForceScalar {
		for i := range dst {
			dst[i] = c.LoadU8(addr + uint64(i))
		}
		return
	}
	c.bulkAccess(addr, 1, uint64(len(dst)), memsys.Read)
	c.store.Read(addr, dst)
}

// StoreU8Slice stores src as consecutive bytes, one timed store each.
func (c *CPU) StoreU8Slice(addr uint64, src []uint8) {
	if c.ForceScalar {
		for i, v := range src {
			c.StoreU8(addr+uint64(i), v)
		}
		return
	}
	c.bulkAccess(addr, 1, uint64(len(src)), memsys.Write)
	c.store.Write(addr, src)
}

// LoadU16Slice loads len(dst) consecutive 16-bit values, one timed load
// each.
func (c *CPU) LoadU16Slice(addr uint64, dst []uint16) {
	if c.ForceScalar {
		for i := range dst {
			dst[i] = c.LoadU16(addr + uint64(i)*2)
		}
		return
	}
	c.bulkAccess(addr, 2, uint64(len(dst)), memsys.Read)
	c.store.ReadU16Slice(addr, dst)
}

// StoreU16Slice stores src as consecutive 16-bit values, one timed store
// each.
func (c *CPU) StoreU16Slice(addr uint64, src []uint16) {
	if c.ForceScalar {
		for i, v := range src {
			c.StoreU16(addr+uint64(i)*2, v)
		}
		return
	}
	c.bulkAccess(addr, 2, uint64(len(src)), memsys.Write)
	c.store.WriteU16Slice(addr, src)
}

// LoadU32Slice loads len(dst) consecutive 32-bit values, one timed load
// each.
func (c *CPU) LoadU32Slice(addr uint64, dst []uint32) {
	if c.ForceScalar {
		for i := range dst {
			dst[i] = c.LoadU32(addr + uint64(i)*4)
		}
		return
	}
	c.bulkAccess(addr, 4, uint64(len(dst)), memsys.Read)
	c.store.ReadU32Slice(addr, dst)
}

// StoreU32Slice stores src as consecutive 32-bit values, one timed store
// each.
func (c *CPU) StoreU32Slice(addr uint64, src []uint32) {
	if c.ForceScalar {
		for i, v := range src {
			c.StoreU32(addr+uint64(i)*4, v)
		}
		return
	}
	c.bulkAccess(addr, 4, uint64(len(src)), memsys.Write)
	c.store.WriteU32Slice(addr, src)
}

// LoadU64Slice loads len(dst) consecutive 64-bit values, one timed load
// each.
func (c *CPU) LoadU64Slice(addr uint64, dst []uint64) {
	if c.ForceScalar {
		for i := range dst {
			dst[i] = c.LoadU64(addr + uint64(i)*8)
		}
		return
	}
	c.bulkAccess(addr, 8, uint64(len(dst)), memsys.Read)
	c.store.ReadU64Slice(addr, dst)
}

// StoreU64Slice stores src as consecutive 64-bit values, one timed store
// each.
func (c *CPU) StoreU64Slice(addr uint64, src []uint64) {
	if c.ForceScalar {
		for i, v := range src {
			c.StoreU64(addr+uint64(i)*8, v)
		}
		return
	}
	c.bulkAccess(addr, 8, uint64(len(src)), memsys.Write)
	c.store.WriteU64Slice(addr, src)
}

// Stream charges n iterations of a fixed-stride access pattern plus
// computePerIter instructions per iteration, routing the memory timing
// through the hierarchy's stream-folding layer. The ledger comes out
// exactly as the equivalent scalar loop's would — per iteration, each
// pattern entry as an access (Count == 1) or slice access (Count > 1)
// followed by Compute(computePerIter); every bucket is a sum, and sums are
// order-independent — so folding changes wall-clock only, never a
// measurement. With ForceScalar or tracing on, the scalar loop itself runs,
// preserving the per-access trace span structure.
//
// Stream performs no functional data movement: callers mirror values
// host-side or move bytes in bulk on the store, exactly as the Active-Page
// side already does.
func (c *CPU) Stream(base uint64, stride int64, n uint64, accs []memsys.StreamAcc, computePerIter uint64) {
	if n == 0 {
		return
	}
	// One forced poll per stream call: a single Stream can stand in for an
	// arbitrarily long loop, so the paced per-access poll never fires inside
	// its fast path.
	if c.Interrupt != nil {
		if err := c.Interrupt(); err != nil {
			panic(CancelPanic{Err: err})
		}
	}
	fast := !c.ForceScalar && c.tracer == nil
	for k := range accs {
		if accs[k].Kind != memsys.Read && accs[k].Kind != memsys.Write {
			// The bulk ledger split below assumes every access is cached
			// (each costs at least L1HitTime); route anything else scalar.
			fast = false
		}
	}
	if !fast {
		for i := uint64(0); i < n; i++ {
			for k := range accs {
				a := &accs[k]
				addr := streamAddr(base, stride, i, a)
				if a.Count > 1 {
					c.bulkAccess(addr, a.Size, a.Count, a.Kind)
				} else {
					c.access(addr, a.Size, a.Kind)
				}
			}
			if computePerIter > 0 {
				c.Compute(computePerIter)
			}
		}
		return
	}
	t := c.hier.StreamRun(base, stride, n, accs)
	var perIter, loads uint64
	for k := range accs {
		cnt := max(accs[k].Count, 1)
		perIter += cnt
		if accs[k].Kind == memsys.Read {
			loads += cnt
		}
	}
	total := n * perIter
	hitTotal := sim.Duration(total) * c.hier.L1HitTime()
	if t < hitTotal {
		hitTotal = t // cannot happen for cached accesses; defensive
	}
	c.now += t
	c.Stats.ComputeTime += hitTotal
	c.Stats.MemStallTime += t - hitTotal
	c.Stats.Instructions += total
	c.Stats.Loads += n * loads
	c.Stats.Stores += total - n*loads
	if computePerIter > 0 {
		c.Compute(n * computePerIter)
	}
}

// StrideStream charges n elemBytes-wide accesses of the given kind at
// base, base+stride, …, through the stream-folding layer, with
// computePerIter instructions between accesses. See Stream.
func (c *CPU) StrideStream(base, elemBytes uint64, stride int64, n uint64, kind memsys.AccessKind, computePerIter uint64) {
	accs := [1]memsys.StreamAcc{{Size: elemBytes, Count: 1, Kind: kind}}
	c.Stream(base, stride, n, accs[:], computePerIter)
}

// streamAddr resolves one stream entry's address for iteration i, honoring
// its per-entry stride override.
func streamAddr(base uint64, stride int64, i uint64, a *memsys.StreamAcc) uint64 {
	s := stride
	if a.Stride != 0 {
		s = a.Stride
	}
	return base + uint64(s)*i + uint64(a.Off)
}

// NestedStream charges a two-level loop nest through the hierarchy's
// nested stream layer: outerN macro-iterations, each running innerN inner
// iterations of accs (at base + i·outerStride + j·innerStride + Off, with
// per-entry Stride overrides) plus innerCpi instructions, then every entry
// of tail once (at base + i·outerStride + Off) plus tailCpi instructions.
// The ledger comes out exactly as the equivalent two-level scalar loop's
// would — every bucket is a sum, and sums are order-independent — so outer
// folding changes wall-clock only, never a measurement. With ForceScalar or
// tracing on, the scalar nest itself runs. Like Stream, NestedStream moves
// no data: callers mirror values host-side.
func (c *CPU) NestedStream(base uint64, outerStride int64, outerN uint64,
	innerStride int64, innerN uint64, accs []memsys.StreamAcc, innerCpi uint64,
	tail []memsys.StreamAcc, tailCpi uint64) {
	if outerN == 0 {
		return
	}
	// One forced poll per nest, mirroring Stream: the whole nest can stand
	// in for a very long loop the paced per-access poll never sees.
	if c.Interrupt != nil {
		if err := c.Interrupt(); err != nil {
			panic(CancelPanic{Err: err})
		}
	}
	fast := !c.ForceScalar && c.tracer == nil
	for _, s := range [2][]memsys.StreamAcc{accs, tail} {
		for k := range s {
			if s[k].Kind != memsys.Read && s[k].Kind != memsys.Write {
				// The bulk ledger split assumes cached accesses only.
				fast = false
			}
		}
	}
	if !fast {
		for i := uint64(0); i < outerN; i++ {
			b := base + uint64(outerStride)*i
			for j := uint64(0); j < innerN; j++ {
				for k := range accs {
					a := &accs[k]
					addr := streamAddr(b, innerStride, j, a)
					if a.Count > 1 {
						c.bulkAccess(addr, a.Size, a.Count, a.Kind)
					} else {
						c.access(addr, a.Size, a.Kind)
					}
				}
				if innerCpi > 0 {
					c.Compute(innerCpi)
				}
			}
			for k := range tail {
				a := &tail[k]
				addr := b + uint64(a.Off)
				if a.Count > 1 {
					c.bulkAccess(addr, a.Size, a.Count, a.Kind)
				} else {
					c.access(addr, a.Size, a.Kind)
				}
			}
			if tailCpi > 0 {
				c.Compute(tailCpi)
			}
		}
		return
	}
	t := c.hier.NestedStreamRun(base, outerStride, outerN, innerStride, innerN, accs, tail)
	var perInner, innerLoads, perTail, tailLoads uint64
	for k := range accs {
		cnt := max(accs[k].Count, 1)
		perInner += cnt
		if accs[k].Kind == memsys.Read {
			innerLoads += cnt
		}
	}
	for k := range tail {
		cnt := max(tail[k].Count, 1)
		perTail += cnt
		if tail[k].Kind == memsys.Read {
			tailLoads += cnt
		}
	}
	total := outerN * (innerN*perInner + perTail)
	loads := outerN * (innerN*innerLoads + tailLoads)
	hitTotal := sim.Duration(total) * c.hier.L1HitTime()
	if t < hitTotal {
		hitTotal = t // cannot happen for cached accesses; defensive
	}
	c.now += t
	c.Stats.ComputeTime += hitTotal
	c.Stats.MemStallTime += t - hitTotal
	c.Stats.Instructions += total
	c.Stats.Loads += loads
	c.Stats.Stores += total - loads
	if cpi := innerN*innerCpi + tailCpi; cpi > 0 {
		c.Compute(outerN * cpi)
	}
}

// TouchLoad charges the timing of a size-byte load whose value the caller
// mirrors host-side: identical hierarchy traffic and ledger to LoadU32 and
// friends, with the functional store read elided.
func (c *CPU) TouchLoad(addr, size uint64) { c.access(addr, size, memsys.Read) }

// TouchStore charges the timing of a size-byte store whose bytes the
// caller moves in bulk on the store afterwards: identical hierarchy traffic
// and ledger to StoreU32 and friends, with the functional write elided.
func (c *CPU) TouchStore(addr, size uint64) { c.access(addr, size, memsys.Write) }

// ReadBlockU32 loads a block of 32-bit values charged as one block read
// (like ReadBlock: a single multi-line access) and decoded in one pass.
func (c *CPU) ReadBlockU32(addr uint64, dst []uint32) {
	c.access(addr, uint64(len(dst))*4, memsys.Read)
	c.store.ReadU32Slice(addr, dst)
}

// WriteBlockU32 stores a block of 32-bit values charged as one block write.
func (c *CPU) WriteBlockU32(addr uint64, src []uint32) {
	c.access(addr, uint64(len(src))*4, memsys.Write)
	c.store.WriteU32Slice(addr, src)
}

// UncachedLoadU32 reads a word around the caches — an Active-Page
// synchronization variable or output area read.
func (c *CPU) UncachedLoadU32(addr uint64) uint32 {
	c.access(addr, 4, memsys.UncachedRead)
	return c.store.ReadU32(addr)
}

// UncachedStoreU32 writes a word around the caches — an activation or
// synchronization-variable write.
func (c *CPU) UncachedStoreU32(addr uint64, v uint32) {
	c.access(addr, 4, memsys.UncachedWrite)
	c.store.WriteU32(addr, v)
}

// UncachedReadBlock reads a block around the caches (Active-Page output
// areas, gathered in cache-line units over the bus).
func (c *CPU) UncachedReadBlock(addr uint64, p []byte) {
	c.access(addr, uint64(len(p)), memsys.UncachedRead)
	c.store.Read(addr, p)
}

// UncachedWriteBlock writes a block around the caches.
func (c *CPU) UncachedWriteBlock(addr uint64, p []byte) {
	c.access(addr, uint64(len(p)), memsys.UncachedWrite)
	c.store.Write(addr, p)
}

// StallUntil advances the clock to t, recording the wait as non-overlap
// time (stalled on Active-Page computation). It is a no-op if t is in the
// past.
func (c *CPU) StallUntil(t sim.Time) {
	if t > c.now {
		if c.tracer != nil {
			c.flushCompute(c.now)
			c.tracer.Span(obs.TIDCPU, "proc", "ap_wait", c.now, t-c.now)
		}
		c.Stats.NonOverlapTime += t - c.now
		c.now = t
	}
}

// MediationWork charges d of processor time spent servicing inter-page
// communication on behalf of the memory system.
func (c *CPU) MediationWork(d sim.Duration) {
	if c.tracer != nil {
		c.flushCompute(c.now)
		c.tracer.Span(obs.TIDCPU, "proc", "mediation", c.now, d)
	}
	c.now += d
	c.Stats.MediationTime += d
}

// AdvanceTo moves the clock forward without accounting (used by harnesses
// to align phases); it never moves backward.
func (c *CPU) AdvanceTo(t sim.Time) {
	if t > c.now {
		c.now = t
	}
}
