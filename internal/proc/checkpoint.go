package proc

import "activepages/internal/sim"

// CancelPanic is the sentinel the cancellation hook throws to unwind a
// simulated program mid-run. Simulated programs are plain Go call stacks
// with no side channel for an error return, so the unwind is a panic;
// run.Map recovers it and surfaces Err as an ordinary error.
type CancelPanic struct{ Err error }

// Checkpoint is a value snapshot of the processor's simulated state: the
// clock position and the time/operation ledger. Everything else on the CPU
// is configuration or host-side scratch.
type Checkpoint struct {
	now   sim.Time
	stats Stats
}

// Checkpoint captures the processor state.
func (c *CPU) Checkpoint() Checkpoint {
	return Checkpoint{now: c.now, stats: c.Stats}
}

// Restore overwrites the processor state with a checkpoint taken from a
// CPU of the same configuration.
func (c *CPU) Restore(ck Checkpoint) {
	c.now = ck.now
	c.Stats = ck.stats
}
