package proc

import (
	"math/rand"
	"testing"

	"activepages/internal/mem"
	"activepages/internal/memsys"
)

// newStack builds an isolated CPU + hierarchy + store. When reference is
// set, every fast path in the stack is disabled: the CPU issues scalar
// accesses and the hierarchy walks the full chain per element.
func newStack(reference bool) *CPU {
	h := memsys.New(memsys.DefaultConfig())
	h.Reference = reference
	c := New(DefaultConfig(), h, mem.NewStore())
	c.ForceScalar = reference
	return c
}

// TestBulkOpsMatchScalar drives a fast and a reference stack through the
// same random mix of typed slice operations and requires the time ledger,
// operation counts, hierarchy statistics, and memory contents to stay
// identical at every step.
func TestBulkOpsMatchScalar(t *testing.T) {
	fast, ref := newStack(false), newStack(true)
	rng := rand.New(rand.NewSource(11))

	check := func(step int) {
		t.Helper()
		if fast.Stats != ref.Stats {
			t.Fatalf("step %d: ledger %+v, want %+v", step, fast.Stats, ref.Stats)
		}
		if fast.Now() != ref.Now() {
			t.Fatalf("step %d: now %v, want %v", step, fast.Now(), ref.Now())
		}
		fh, rh := fast.Hierarchy(), ref.Hierarchy()
		if fh.L1D.Stats != rh.L1D.Stats || fh.L2.Stats != rh.L2.Stats ||
			fh.DRAM.Stats != rh.DRAM.Stats || fh.UncachedAccesses != rh.UncachedAccesses {
			t.Fatalf("step %d: hierarchy stats diverged", step)
		}
	}

	u16 := make([]uint16, 128)
	u32 := make([]uint32, 128)
	u64 := make([]uint64, 128)
	u16b := make([]uint16, 128)
	u32b := make([]uint32, 128)
	u64b := make([]uint64, 128)
	for step := 0; step < 3000; step++ {
		addr := uint64(rng.Intn(1 << 16))
		n := rng.Intn(128) + 1
		switch rng.Intn(6) {
		case 0:
			for i := 0; i < n; i++ {
				u32[i] = rng.Uint32()
			}
			fast.StoreU32Slice(addr, u32[:n])
			ref.StoreU32Slice(addr, u32[:n])
		case 1:
			fast.LoadU32Slice(addr, u32[:n])
			ref.LoadU32Slice(addr, u32b[:n])
			for i := 0; i < n; i++ {
				if u32[i] != u32b[i] {
					t.Fatalf("step %d: load[%d] = %#x, want %#x", step, i, u32[i], u32b[i])
				}
			}
		case 2:
			for i := 0; i < n; i++ {
				u16[i] = uint16(rng.Uint32())
			}
			fast.StoreU16Slice(addr, u16[:n])
			ref.StoreU16Slice(addr, u16[:n])
		case 3:
			fast.LoadU16Slice(addr, u16[:n])
			ref.LoadU16Slice(addr, u16b[:n])
			for i := 0; i < n; i++ {
				if u16[i] != u16b[i] {
					t.Fatalf("step %d: load16[%d] diverged", step, i)
				}
			}
		case 4:
			for i := 0; i < n; i++ {
				u64[i] = rng.Uint64()
			}
			fast.StoreU64Slice(addr, u64[:n])
			ref.StoreU64Slice(addr, u64[:n])
		case 5:
			fast.LoadU64Slice(addr, u64[:n])
			ref.LoadU64Slice(addr, u64b[:n])
			for i := 0; i < n; i++ {
				if u64[i] != u64b[i] {
					t.Fatalf("step %d: load64[%d] diverged", step, i)
				}
			}
		}
		// Interleave scalar traffic so the caches see mixed patterns.
		if rng.Intn(3) == 0 {
			a := uint64(rng.Intn(1 << 16))
			fast.StoreU32(a, 1)
			ref.StoreU32(a, 1)
			_ = fast.LoadU32(a)
			_ = ref.LoadU32(a)
		}
		check(step)
	}
}

// TestScalarLoadStoreZeroAllocs pins the PR's 0 allocs/op acceptance
// criterion on the scalar load/store fast path.
func TestScalarLoadStoreZeroAllocs(t *testing.T) {
	c := newStack(false)
	c.StoreU32(0, 1)
	if n := testing.AllocsPerRun(100, func() {
		c.StoreU32(64, 42)
		_ = c.LoadU32(64)
		_ = c.LoadU16(32)
		c.StoreU64(128, 7)
		_ = c.LoadU64(128)
	}); n != 0 {
		t.Fatalf("scalar load/store path allocates %v times per op", n)
	}
}

func BenchmarkCPULoadU32(b *testing.B) {
	c := newStack(false)
	c.StoreU32(0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.LoadU32(uint64(i%1024) * 4)
	}
}

// BenchmarkLoadU32Slice compares the batched bulk path against the scalar
// per-element loop it replaced.
func BenchmarkLoadU32Slice(b *testing.B) {
	buf := make([]uint32, 4096)
	b.Run("bulk", func(b *testing.B) {
		c := newStack(false)
		c.StoreU32Slice(0, buf)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.LoadU32Slice(0, buf)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		c := newStack(true)
		c.StoreU32Slice(0, buf)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.LoadU32Slice(0, buf)
		}
	})
}
