package proc

import (
	"testing"

	"activepages/internal/mem"
	"activepages/internal/memsys"
	"activepages/internal/sim"
)

func newCPU() *CPU {
	store := mem.NewStore()
	return New(DefaultConfig(), memsys.New(memsys.DefaultConfig()), store)
}

func TestComputeAdvancesClock(t *testing.T) {
	c := newCPU()
	c.Compute(1000)
	if c.Now() != 1*sim.Microsecond {
		t.Fatalf("1000 cycles at 1 GHz = %v, want 1us", c.Now())
	}
	if c.Stats.ComputeTime != 1*sim.Microsecond || c.Stats.Instructions != 1000 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	c := newCPU()
	c.StoreU32(100, 0xDEADBEEF)
	if got := c.LoadU32(100); got != 0xDEADBEEF {
		t.Fatalf("load = %#x", got)
	}
	c.StoreU16(200, 0xBEEF)
	if got := c.LoadU16(200); got != 0xBEEF {
		t.Fatal("u16 round trip")
	}
	c.StoreU64(300, 42)
	if got := c.LoadU64(300); got != 42 {
		t.Fatal("u64 round trip")
	}
	c.StoreU8(400, 9)
	if got := c.LoadU8(400); got != 9 {
		t.Fatal("u8 round trip")
	}
	if c.Stats.Loads != 4 || c.Stats.Stores != 4 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestColdLoadChargesMemStall(t *testing.T) {
	c := newCPU()
	c.LoadU32(0)
	if c.Stats.MemStallTime == 0 {
		t.Fatal("cold load recorded no memory stall")
	}
	stallAfterCold := c.Stats.MemStallTime
	c.LoadU32(0) // warm: pure hit, no extra stall
	if c.Stats.MemStallTime != stallAfterCold {
		t.Fatal("warm load charged memory stall")
	}
}

func TestUncachedAccessesBypassCache(t *testing.T) {
	c := newCPU()
	c.UncachedStoreU32(64, 7)
	if got := c.UncachedLoadU32(64); got != 7 {
		t.Fatalf("uncached round trip = %d", got)
	}
	if c.Hierarchy().L1D.Stats.Accesses() != 0 {
		t.Fatal("uncached access touched L1D")
	}
}

func TestBlockOps(t *testing.T) {
	c := newCPU()
	data := []byte{1, 2, 3, 4, 5}
	c.WriteBlock(1000, data)
	got := make([]byte, 5)
	c.ReadBlock(1000, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatal("block round trip")
		}
	}
	c.UncachedWriteBlock(2000, data)
	c.UncachedReadBlock(2000, got)
	if got[4] != 5 {
		t.Fatal("uncached block round trip")
	}
}

func TestStallUntilRecordsNonOverlap(t *testing.T) {
	c := newCPU()
	c.Compute(100)
	target := c.Now() + 500*sim.Nanosecond
	c.StallUntil(target)
	if c.Now() != target {
		t.Fatalf("now = %v, want %v", c.Now(), target)
	}
	if c.Stats.NonOverlapTime != 500*sim.Nanosecond {
		t.Fatalf("non-overlap = %v", c.Stats.NonOverlapTime)
	}
	// Stalling to the past is a no-op.
	c.StallUntil(0)
	if c.Stats.NonOverlapTime != 500*sim.Nanosecond {
		t.Fatal("past stall recorded time")
	}
}

func TestMediationWork(t *testing.T) {
	c := newCPU()
	c.MediationWork(2 * sim.Microsecond)
	if c.Stats.MediationTime != 2*sim.Microsecond || c.Now() != 2*sim.Microsecond {
		t.Fatalf("mediation = %+v now %v", c.Stats, c.Now())
	}
}

func TestAdvanceTo(t *testing.T) {
	c := newCPU()
	c.AdvanceTo(100)
	if c.Now() != 100 {
		t.Fatal("advance failed")
	}
	c.AdvanceTo(50)
	if c.Now() != 100 {
		t.Fatal("advance moved backward")
	}
	if c.Stats.TotalTime() != 0 {
		t.Fatal("AdvanceTo should not account time")
	}
}

func TestComputeFP(t *testing.T) {
	c := newCPU()
	c.ComputeFP(100)
	if c.Stats.FPOps != 100 {
		t.Fatalf("FP ops = %d", c.Stats.FPOps)
	}
	if c.Now() != 100*sim.Nanosecond {
		t.Fatalf("pipelined FP time = %v, want 100ns", c.Now())
	}
}

func TestStatsDerived(t *testing.T) {
	s := Stats{
		ComputeTime:    60,
		MemStallTime:   20,
		NonOverlapTime: 15,
		MediationTime:  5,
	}
	if s.TotalTime() != 100 {
		t.Fatal("total wrong")
	}
	if s.BusyTime() != 65 {
		t.Fatal("busy wrong")
	}
	if s.NonOverlapFraction() != 0.15 {
		t.Fatalf("non-overlap fraction = %v", s.NonOverlapFraction())
	}
	if (Stats{}).NonOverlapFraction() != 0 {
		t.Fatal("empty stats fraction should be 0")
	}
}

func TestTimeBucketsPartitionTotal(t *testing.T) {
	// Whatever mix of operations runs, Now() equals the sum of buckets.
	c := newCPU()
	c.Compute(123)
	c.LoadU32(0)
	c.LoadU32(4096)
	c.StoreU64(8192, 1)
	c.UncachedLoadU32(1 << 20)
	c.StallUntil(c.Now() + 777*sim.Nanosecond)
	c.MediationWork(55 * sim.Nanosecond)
	if c.Now() != c.Stats.TotalTime() {
		t.Fatalf("now %v != bucket sum %v", c.Now(), c.Stats.TotalTime())
	}
}

// Property: Compute is exact — n instructions always advance the clock by
// exactly n cycles, independent of history.
func TestComputeExactProperty(t *testing.T) {
	c := newCPU()
	total := uint64(0)
	for _, n := range []uint64{1, 7, 1000, 999983} {
		before := c.Now()
		c.Compute(n)
		total += n
		if c.Now()-before != sim.Duration(n)*sim.Nanosecond {
			t.Fatalf("Compute(%d) advanced %v", n, c.Now()-before)
		}
	}
	if c.Stats.Instructions != total {
		t.Fatalf("instructions = %d, want %d", c.Stats.Instructions, total)
	}
}

func TestUncachedBlockTiming(t *testing.T) {
	c := newCPU()
	buf := make([]byte, 64)
	before := c.Now()
	c.UncachedReadBlock(0, buf)
	// DRAM cold access (50ns) + 16 bus beats (160ns).
	if got := c.Now() - before; got != 210*sim.Nanosecond {
		t.Fatalf("uncached 64B read = %v, want 210ns", got)
	}
}
