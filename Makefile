GO ?= go

.PHONY: all build test race vet bench paper clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...
	gofmt -l .

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Regenerate every table and figure of the paper's evaluation.
paper:
	$(GO) run ./cmd/apbench -experiment all

clean:
	$(GO) clean ./...
