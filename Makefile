GO ?= go

.PHONY: all build test race vet bench microbench quickbench simdram-quick loadtest fleettest paper clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...
	gofmt -l .

# Root bench_test.go: end-to-end experiment timings with allocation counts.
bench:
	$(GO) test -bench . -benchtime 1x -benchmem -run '^$$' .

# Hot-path microbenchmarks: store/cache/DRAM/hierarchy/CPU fast paths and
# the stream-folding layer.
microbench:
	$(GO) test -bench 'Access|Store|CPU|Slice|Stream' -benchmem -run '^$$' \
		./internal/mem/ ./internal/cache/ ./internal/dram/ \
		./internal/memsys/ ./internal/proc/

# One-command check of the evaluation-loop speedup criterion: wall-clock of
# the full quick sweep on a single worker.
quickbench:
	$(GO) build -o /tmp/apbench-quickbench ./cmd/apbench
	@s=$$(date +%s%N); /tmp/apbench-quickbench -experiment all -quick -jobs 1 > /dev/null; \
	e=$$(date +%s%N); echo "quick run: $$(( (e-s)/1000000 )) ms"

# Reproduce the SIMDRAM CI gate locally: the quick array sweep on the
# bit-serial backend must match the committed baseline exactly, and must
# be identical for any worker count.
simdram-quick:
	$(GO) build -o /tmp/apbench-simdram ./cmd/apbench
	$(GO) build -o /tmp/apreport-simdram ./cmd/apreport
	/tmp/apbench-simdram -experiment array -quick -backend simdram -json > /tmp/simdram-j1.txt
	/tmp/apbench-simdram -experiment array -quick -backend simdram -json -jobs 8 > /tmp/simdram-j8.txt
	cmp /tmp/simdram-j1.txt /tmp/simdram-j8.txt
	/tmp/apreport-simdram -tol 0 ci/baseline-array-quick-simdram.txt /tmp/simdram-j1.txt

# Boot the daemon, drive it with the load generator, and shut it down:
# one-command smoke of the serve stack plus a tail-latency summary.
loadtest:
	$(GO) build -o /tmp/apserved ./cmd/apserved
	$(GO) build -o /tmp/apload ./cmd/apload
	@/tmp/apserved -addr 127.0.0.1:8098 -workers 2 2> /tmp/apserved-loadtest.log & \
	pid=$$!; \
	for i in $$(seq 1 50); do curl -sf http://127.0.0.1:8098/healthz > /dev/null && break; sleep 0.2; done; \
	/tmp/apload -addr http://127.0.0.1:8098 -n 50 -c 8 -experiment array -quick; rc=$$?; \
	kill -TERM $$pid; wait $$pid; exit $$rc

# Boot a consistent-hash fleet (router + 3 in-process shards) and drive it
# with a Zipf-skewed spec mix: one-command smoke of the content-addressed
# cache + sharding stack, reporting throughput and cache hit rate.
fleettest:
	$(GO) build -o /tmp/aprouted ./cmd/aprouted
	$(GO) build -o /tmp/apload ./cmd/apload
	@/tmp/aprouted -addr 127.0.0.1:8099 -spawn 3 -workers 2 -loglevel warn 2> /tmp/aprouted-fleettest.log & \
	pid=$$!; \
	for i in $$(seq 1 50); do curl -sf http://127.0.0.1:8099/healthz > /dev/null && break; sleep 0.2; done; \
	/tmp/apload -addr http://127.0.0.1:8099 -n 500 -c 8 -zipf 1.1 -specs 12 -seed 7; rc=$$?; \
	curl -s http://127.0.0.1:8099/metrics | grep -E 'ap_router_(requests|retries|shed|cache_hits|cache_misses)'; \
	kill -TERM $$pid; wait $$pid; exit $$rc

# Regenerate every table and figure of the paper's evaluation.
paper:
	$(GO) run ./cmd/apbench -experiment all

clean:
	$(GO) clean ./...
