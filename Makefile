GO ?= go

.PHONY: all build test race vet bench microbench paper clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...
	gofmt -l .

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Hot-path microbenchmarks: store/cache/DRAM/hierarchy/CPU fast paths.
microbench:
	$(GO) test -bench 'Access|Store|CPU|Slice' -run '^$$' \
		./internal/mem/ ./internal/cache/ ./internal/dram/ \
		./internal/memsys/ ./internal/proc/

# Regenerate every table and figure of the paper's evaluation.
paper:
	$(GO) run ./cmd/apbench -experiment all

clean:
	$(GO) clean ./...
