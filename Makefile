GO ?= go

.PHONY: all build test race vet bench microbench quickbench paper clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...
	gofmt -l .

# Root bench_test.go: end-to-end experiment timings with allocation counts.
bench:
	$(GO) test -bench . -benchtime 1x -benchmem -run '^$$' .

# Hot-path microbenchmarks: store/cache/DRAM/hierarchy/CPU fast paths and
# the stream-folding layer.
microbench:
	$(GO) test -bench 'Access|Store|CPU|Slice|Stream' -benchmem -run '^$$' \
		./internal/mem/ ./internal/cache/ ./internal/dram/ \
		./internal/memsys/ ./internal/proc/

# One-command check of the evaluation-loop speedup criterion: wall-clock of
# the full quick sweep on a single worker.
quickbench:
	$(GO) build -o /tmp/apbench-quickbench ./cmd/apbench
	@s=$$(date +%s%N); /tmp/apbench-quickbench -experiment all -quick -jobs 1 > /dev/null; \
	e=$$(date +%s%N); echo "quick run: $$(( (e-s)/1000000 )) ms"

# Regenerate every table and figure of the paper's evaluation.
paper:
	$(GO) run ./cmd/apbench -experiment all

clean:
	$(GO) clean ./...
