// Command apload load-tests an apserved daemon: it submits n runs of one
// experiment across c concurrent clients, polls each to completion, and
// prints a tail-latency summary of the end-to-end run lifecycle
// (submit -> done) plus a queue-wait versus execute attribution taken from
// the daemon's own lifecycle stamps — so saturation (time spent waiting
// for a worker) is visible separately from simulation cost.
//
// Usage:
//
//	apload -addr http://127.0.0.1:8080 -n 50 -c 8 -experiment array -quick
//
// The exit status is nonzero if any submission is rejected, any run fails,
// or any poll errors — so CI can use apload as a smoke gate on the daemon.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

func main() {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "apload:", err)
		os.Exit(1)
	}
}

// runResult is one submission's end-to-end outcome. queueWait and execute
// come from the daemon's lifecycle stamps (started-submitted and
// finished-started), attributing where the wall time went server-side.
type runResult struct {
	id        string
	err       error
	elapsed   time.Duration // submit -> observed done (client-observed)
	queueWait time.Duration // submitted -> worker pickup (daemon stamps)
	execute   time.Duration // worker pickup -> finished (daemon stamps)
}

func realMain() error {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8080", "apserved base URL")
		n          = flag.Int("n", 50, "total runs to submit")
		c          = flag.Int("c", 8, "concurrent clients")
		experiment = flag.String("experiment", "array", "experiment to submit")
		backendSel = flag.String("backend", "", "compute backend to request (radram, simdram, or all; empty = daemon default)")
		quick      = flag.Bool("quick", true, "submit quick (short-axis) runs")
		poll       = flag.Duration("poll", 50*time.Millisecond, "status poll interval")
		timeout    = flag.Duration("timeout", 5*time.Minute, "per-run completion deadline")
	)
	flag.Parse()

	reqBody := map[string]any{"experiment": *experiment, "quick": *quick}
	if *backendSel != "" {
		reqBody["backend"] = *backendSel
	}
	body, err := json.Marshal(reqBody)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 30 * time.Second}

	// Shed-aware submission: a 503 (queue full) retries with backoff rather
	// than failing, since load shedding is the daemon working as designed;
	// any other non-202 is a hard failure.
	submit := func() (string, error) {
		backoff := *poll
		for {
			resp, err := client.Post(*addr+"/api/v1/runs", "application/json", bytes.NewReader(body))
			if err != nil {
				return "", err
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				var run struct {
					ID string `json:"id"`
				}
				if err := json.Unmarshal(data, &run); err != nil || run.ID == "" {
					return "", fmt.Errorf("bad submit response: %s", data)
				}
				return run.ID, nil
			case http.StatusServiceUnavailable:
				time.Sleep(backoff)
				if backoff < time.Second {
					backoff *= 2
				}
			default:
				return "", fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
			}
		}
	}

	// wait polls the run view until the run reaches a terminal state and
	// returns the daemon-stamped queue-wait (submitted -> started) and
	// execute (started -> finished) durations for the latency attribution.
	wait := func(id string) (queueWait, execute time.Duration, err error) {
		deadline := time.Now().Add(*timeout)
		for time.Now().Before(deadline) {
			resp, err := client.Get(*addr + "/api/v1/runs/" + id)
			if err != nil {
				return 0, 0, err
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return 0, 0, fmt.Errorf("poll %s: HTTP %d: %s", id, resp.StatusCode, strings.TrimSpace(string(data)))
			}
			var run struct {
				State     string     `json:"state"`
				Error     string     `json:"error"`
				Submitted time.Time  `json:"submitted"`
				Started   *time.Time `json:"started"`
				Finished  *time.Time `json:"finished"`
			}
			if err := json.Unmarshal(data, &run); err != nil {
				return 0, 0, fmt.Errorf("poll %s: %w", id, err)
			}
			switch run.State {
			case "done":
				if run.Started != nil {
					queueWait = run.Started.Sub(run.Submitted)
					if run.Finished != nil {
						execute = run.Finished.Sub(*run.Started)
					}
				}
				return queueWait, execute, nil
			case "failed":
				return 0, 0, fmt.Errorf("run %s failed: %s", id, run.Error)
			}
			time.Sleep(*poll)
		}
		return 0, 0, fmt.Errorf("run %s did not finish within %s", id, *timeout)
	}

	label := *experiment
	if *backendSel != "" {
		label += " backend=" + *backendSel
	}
	fmt.Printf("apload: %d x %q (quick=%v) across %d clients against %s\n",
		*n, label, *quick, *c, *addr)
	start := time.Now()
	results := make([]runResult, *n)
	var next int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := int(next)
				next++
				mu.Unlock()
				if i >= *n {
					return
				}
				t0 := time.Now()
				var qw, ex time.Duration
				id, err := submit()
				if err == nil {
					qw, ex, err = wait(id)
				}
				results[i] = runResult{id: id, err: err,
					elapsed: time.Since(t0), queueWait: qw, execute: ex}
			}
		}()
	}
	wg.Wait()
	total := time.Since(start)

	var failed int
	latencies := make([]time.Duration, 0, *n)
	queueWaits := make([]time.Duration, 0, *n)
	executes := make([]time.Duration, 0, *n)
	var queueTotal, execTotal time.Duration
	for _, r := range results {
		if r.err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "apload: %v\n", r.err)
			continue
		}
		latencies = append(latencies, r.elapsed)
		queueWaits = append(queueWaits, r.queueWait)
		executes = append(executes, r.execute)
		queueTotal += r.queueWait
		execTotal += r.execute
	}
	quantiles := func(ds []time.Duration) func(float64) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return func(p float64) time.Duration {
			if len(ds) == 0 {
				return 0
			}
			return ds[int(p*float64(len(ds)-1))]
		}
	}
	q := quantiles(latencies)
	qq := quantiles(queueWaits)
	qe := quantiles(executes)
	fmt.Printf("apload: %d ok, %d failed in %s (%.1f runs/s)\n",
		len(latencies), failed, total.Round(time.Millisecond),
		float64(len(latencies))/total.Seconds())
	fmt.Printf("apload: submit->done latency p50=%s p90=%s p99=%s max=%s\n",
		q(0.50).Round(time.Millisecond), q(0.90).Round(time.Millisecond),
		q(0.99).Round(time.Millisecond), q(1.0).Round(time.Millisecond))
	fmt.Printf("apload: queue-wait          p50=%s p90=%s p99=%s max=%s\n",
		qq(0.50).Round(time.Millisecond), qq(0.90).Round(time.Millisecond),
		qq(0.99).Round(time.Millisecond), qq(1.0).Round(time.Millisecond))
	fmt.Printf("apload: execute             p50=%s p90=%s p99=%s max=%s\n",
		qe(0.50).Round(time.Millisecond), qe(0.90).Round(time.Millisecond),
		qe(0.99).Round(time.Millisecond), qe(1.0).Round(time.Millisecond))
	if serverTotal := queueTotal + execTotal; serverTotal > 0 {
		fmt.Printf("apload: server wall split   queue-wait %.1f%%, execute %.1f%%\n",
			100*float64(queueTotal)/float64(serverTotal),
			100*float64(execTotal)/float64(serverTotal))
	}
	if failed > 0 {
		return fmt.Errorf("%d/%d runs failed", failed, *n)
	}
	return nil
}
