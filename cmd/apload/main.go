// Command apload load-tests an apserved daemon (or an aprouted fleet): it
// submits n runs across c concurrent clients, polls each to completion,
// and prints a tail-latency summary of the end-to-end run lifecycle
// (submit -> done) plus a queue-wait versus execute attribution taken from
// the daemon's own lifecycle stamps — so saturation (time spent waiting
// for a worker) is visible separately from simulation cost — and a
// cache-hit column showing how many runs were answered from the
// content-addressed result cache.
//
// Usage:
//
//	apload -addr http://127.0.0.1:8080 -n 50 -c 8 -experiment array -quick
//	apload -addr http://127.0.0.1:8090 -n 500 -c 16 -zipf 1.1 -specs 12
//	apload -addr http://127.0.0.1:8090 -fleet
//
// -fleet skips the load run and instead prints the router's live fleet
// status (/api/v1/fleet): per-shard health, queue and worker saturation,
// cache hit rate, and probe age. Failed submissions print the response's
// X-AP-Request-Id so the failure can be joined to the router's and
// shard's access logs.
//
// By default every submission is the same spec. -zipf S instead draws each
// submission from a population of -specs distinct run specs (the base
// experiment crossed with other experiments and superpage sizes) with
// Zipf-distributed popularity: rank r is requested proportionally to
// 1/(r+1)^S. That is the skewed request mix a result cache thrives on —
// a few hot specs dominate, a long tail stays cold — and -seed makes the
// sequence reproducible.
//
// The exit status is nonzero if any submission is rejected, any run fails,
// or any poll errors — so CI can use apload as a smoke gate on the daemon.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

func main() {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "apload:", err)
		os.Exit(1)
	}
}

// requestIDHeader is the fleet-wide request correlation header the
// daemons stamp on every response (internal/httpmw.RequestIDHeader).
const requestIDHeader = "X-AP-Request-Id"

// printFleet renders the router's live fleet status as a one-line-per-
// shard table: health, saturation, cache hit rate, and probe age.
func printFleet(addr string) error {
	resp, err := http.Get(addr + "/api/v1/fleet")
	if err != nil {
		return err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet status: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var status struct {
		Healthy  int `json:"healthy"`
		Total    int `json:"total"`
		Backends []struct {
			Backend       string  `json:"backend"`
			Instance      string  `json:"instance"`
			Healthy       bool    `json:"healthy"`
			QueueDepth    int     `json:"queue_depth"`
			QueueCapacity int     `json:"queue_capacity"`
			WorkersBusy   int     `json:"workers_busy"`
			WorkersTotal  int     `json:"workers_total"`
			CacheHitRate  float64 `json:"cache_hit_rate"`
			LastProbeMS   int64   `json:"last_probe_ms"`
		} `json:"backends"`
	}
	if err := json.Unmarshal(data, &status); err != nil {
		return fmt.Errorf("fleet status: %w", err)
	}
	fmt.Printf("apload: fleet %d/%d backends healthy\n", status.Healthy, status.Total)
	for _, b := range status.Backends {
		health := "healthy"
		if !b.Healthy {
			health = "DOWN"
		}
		hit := "n/a"
		if b.CacheHitRate >= 0 {
			hit = fmt.Sprintf("%.1f%%", 100*b.CacheHitRate)
		}
		probe := "never"
		if b.LastProbeMS >= 0 {
			probe = fmt.Sprintf("%dms ago", b.LastProbeMS)
		}
		instance := b.Instance
		if instance == "" {
			instance = "-"
		}
		fmt.Printf("apload:   %-6s %-28s %-8s queue %d/%d  workers %d/%d  cache-hit %-6s probed %s\n",
			instance, b.Backend, health,
			b.QueueDepth, b.QueueCapacity, b.WorkersBusy, b.WorkersTotal, hit, probe)
	}
	if status.Healthy == 0 {
		return fmt.Errorf("no healthy backends")
	}
	return nil
}

// runResult is one submission's end-to-end outcome. queueWait and execute
// come from the daemon's lifecycle stamps (started-submitted and
// finished-started), attributing where the wall time went server-side.
type runResult struct {
	id        string
	err       error
	cached    bool          // answered from the result cache
	elapsed   time.Duration // submit -> observed done (client-observed)
	queueWait time.Duration // submitted -> worker pickup (daemon stamps)
	execute   time.Duration // worker pickup -> finished (daemon stamps)
}

// spec is one member of the request population: a marshaled submission
// body and the label the summary prints for it.
type spec struct {
	body  []byte
	label string
}

// buildSpecs generates the -zipf request population: the base experiment
// first (rank 0, the hottest spec), then the cross product of a small
// experiment set with the superpage-size axis, deduplicated, clamped to n.
// Popularity rank == generation order, so the base spec dominates a skewed
// mix.
func buildSpecs(base, backend string, quick bool, n int) []spec {
	exps := []string{base}
	for _, e := range []string{"database", "median-kernel"} {
		if e != base {
			exps = append(exps, e)
		}
	}
	pageBytes := []uint64{0, 16384, 32768, 65536, 131072, 262144}
	var out []spec
	for _, pb := range pageBytes {
		for _, e := range exps {
			if len(out) >= n {
				return out
			}
			body := map[string]any{"experiment": e, "quick": quick}
			if pb != 0 {
				body["page_bytes"] = pb
			}
			if backend != "" {
				body["backend"] = backend
			}
			b, _ := json.Marshal(body)
			label := e
			if pb != 0 {
				label += fmt.Sprintf(" pb=%d", pb)
			}
			out = append(out, spec{body: b, label: label})
		}
	}
	if n > len(out) {
		fmt.Fprintf(os.Stderr, "apload: spec population clamped to %d distinct specs\n", len(out))
	}
	return out
}

// zipfSampler draws spec ranks with probability proportional to
// 1/(rank+1)^s, by inverse-CDF over the cumulative weights. Unlike
// math/rand's Zipf it accepts any s > 0 (s <= 1 included), and it is
// seeded, so a load mix is reproducible run to run.
type zipfSampler struct {
	mu  sync.Mutex
	rng *rand.Rand
	cum []float64
}

func newZipfSampler(s float64, n int, seed int64) *zipfSampler {
	cum := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		total += math.Pow(float64(r+1), -s)
		cum[r] = total
	}
	return &zipfSampler{rng: rand.New(rand.NewSource(seed)), cum: cum}
}

func (z *zipfSampler) next() int {
	z.mu.Lock()
	u := z.rng.Float64() * z.cum[len(z.cum)-1]
	z.mu.Unlock()
	return sort.SearchFloat64s(z.cum, u)
}

func realMain() error {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8080", "apserved or aprouted base URL")
		n          = flag.Int("n", 50, "total runs to submit")
		c          = flag.Int("c", 8, "concurrent clients")
		experiment = flag.String("experiment", "array", "experiment to submit (the hottest spec under -zipf)")
		backendSel = flag.String("backend", "", "compute backend to request (radram, simdram, or all; empty = daemon default)")
		quick      = flag.Bool("quick", true, "submit quick (short-axis) runs")
		zipfS      = flag.Float64("zipf", 0, "Zipf skew s for the request mix; 0 submits one spec only")
		nspecs     = flag.Int("specs", 8, "distinct specs in the -zipf population")
		seed       = flag.Int64("seed", 1, "RNG seed for the -zipf request sequence")
		poll       = flag.Duration("poll", 50*time.Millisecond, "status poll interval")
		timeout    = flag.Duration("timeout", 5*time.Minute, "per-run completion deadline")
		fleet      = flag.Bool("fleet", false, "print the router's fleet status (/api/v1/fleet) and exit")
	)
	flag.Parse()

	if *fleet {
		return printFleet(*addr)
	}

	// The request population: one spec in the classic mode, a Zipf-ranked
	// set under -zipf.
	var specs []spec
	var sampler *zipfSampler
	if *zipfS > 0 {
		if *nspecs < 1 {
			return fmt.Errorf("-specs must be >= 1")
		}
		specs = buildSpecs(*experiment, *backendSel, *quick, *nspecs)
		sampler = newZipfSampler(*zipfS, len(specs), *seed)
	} else {
		reqBody := map[string]any{"experiment": *experiment, "quick": *quick}
		if *backendSel != "" {
			reqBody["backend"] = *backendSel
		}
		b, err := json.Marshal(reqBody)
		if err != nil {
			return err
		}
		specs = []spec{{body: b, label: *experiment}}
	}
	// Keep an idle connection per client goroutine: the default transport
	// caps idle conns per host at 2, which under -c 16 forces a TCP dial on
	// most requests and measures the dialer instead of the daemon.
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *c * 2,
			MaxIdleConnsPerHost: *c * 2,
			IdleConnTimeout:     90 * time.Second,
		},
	}

	// runView is the slice of the daemon's run JSON the client consumes.
	type runView struct {
		ID        string     `json:"id"`
		State     string     `json:"state"`
		Error     string     `json:"error"`
		Cached    bool       `json:"cached"`
		Submitted time.Time  `json:"submitted"`
		Started   *time.Time `json:"started"`
		Finished  *time.Time `json:"finished"`
	}

	// Shed-aware submission: a 503 (queue full) retries with backoff rather
	// than failing, since load shedding is the daemon working as designed;
	// any other non-202 is a hard failure. The accepted run view is
	// returned whole: a cache hit is already terminal at submit time, and
	// the caller then skips the poll loop entirely.
	submit := func(body []byte) (runView, error) {
		backoff := *poll
		for {
			resp, err := client.Post(*addr+"/api/v1/runs", "application/json", bytes.NewReader(body))
			if err != nil {
				return runView{}, err
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				var run runView
				if err := json.Unmarshal(data, &run); err != nil || run.ID == "" {
					return runView{}, fmt.Errorf("bad submit response: %s", data)
				}
				return run, nil
			case http.StatusServiceUnavailable:
				time.Sleep(backoff)
				if backoff < time.Second {
					backoff *= 2
				}
			default:
				// The request id joins this failure to the router's and
				// shard's access-log lines for the same interaction.
				return runView{}, fmt.Errorf("submit: HTTP %d (request_id=%s): %s",
					resp.StatusCode, resp.Header.Get(requestIDHeader), strings.TrimSpace(string(data)))
			}
		}
	}

	// finished extracts the terminal attribution from a run view, or
	// reports that the run is still in flight.
	finished := func(run runView) (queueWait, execute time.Duration, cached, terminal bool, err error) {
		switch run.State {
		case "done":
			if run.Started != nil {
				queueWait = run.Started.Sub(run.Submitted)
				if run.Finished != nil {
					execute = run.Finished.Sub(*run.Started)
				}
			}
			return queueWait, execute, run.Cached, true, nil
		case "failed":
			return 0, 0, false, true, fmt.Errorf("run %s failed: %s", run.ID, run.Error)
		}
		return 0, 0, false, false, nil
	}

	// wait polls the run view until the run reaches a terminal state and
	// returns the daemon-stamped queue-wait (submitted -> started) and
	// execute (started -> finished) durations for the latency attribution,
	// plus whether the run was answered from the result cache.
	wait := func(id string) (queueWait, execute time.Duration, cached bool, err error) {
		deadline := time.Now().Add(*timeout)
		for time.Now().Before(deadline) {
			resp, err := client.Get(*addr + "/api/v1/runs/" + id)
			if err != nil {
				return 0, 0, false, err
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return 0, 0, false, fmt.Errorf("poll %s: HTTP %d: %s", id, resp.StatusCode, strings.TrimSpace(string(data)))
			}
			var run runView
			if err := json.Unmarshal(data, &run); err != nil {
				return 0, 0, false, fmt.Errorf("poll %s: %w", id, err)
			}
			qw, ex, cached, terminal, err := finished(run)
			if terminal || err != nil {
				return qw, ex, cached, err
			}
			time.Sleep(*poll)
		}
		return 0, 0, false, fmt.Errorf("run %s did not finish within %s", id, *timeout)
	}

	label := *experiment
	if *backendSel != "" {
		label += " backend=" + *backendSel
	}
	if sampler != nil {
		fmt.Printf("apload: %d runs, zipf s=%g over %d specs (hottest %q), across %d clients against %s\n",
			*n, *zipfS, len(specs), specs[0].label, *c, *addr)
	} else {
		fmt.Printf("apload: %d x %q (quick=%v) across %d clients against %s\n",
			*n, label, *quick, *c, *addr)
	}
	start := time.Now()
	results := make([]runResult, *n)
	var next int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := int(next)
				next++
				mu.Unlock()
				if i >= *n {
					return
				}
				body := specs[0].body
				if sampler != nil {
					body = specs[sampler.next()].body
				}
				t0 := time.Now()
				var qw, ex time.Duration
				var cached bool
				run, err := submit(body)
				if err == nil {
					// A cache hit (or failure) is terminal in the submit
					// response itself; only runs still executing need the
					// poll loop.
					var terminal bool
					qw, ex, cached, terminal, err = finished(run)
					if !terminal && err == nil {
						qw, ex, cached, err = wait(run.ID)
					}
				}
				results[i] = runResult{id: run.ID, err: err, cached: cached,
					elapsed: time.Since(t0), queueWait: qw, execute: ex}
			}
		}()
	}
	wg.Wait()
	total := time.Since(start)

	var failed, hits int
	latencies := make([]time.Duration, 0, *n)
	queueWaits := make([]time.Duration, 0, *n)
	executes := make([]time.Duration, 0, *n)
	var queueTotal, execTotal time.Duration
	for _, r := range results {
		if r.err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "apload: %v\n", r.err)
			continue
		}
		if r.cached {
			hits++
		}
		latencies = append(latencies, r.elapsed)
		queueWaits = append(queueWaits, r.queueWait)
		executes = append(executes, r.execute)
		queueTotal += r.queueWait
		execTotal += r.execute
	}
	quantiles := func(ds []time.Duration) func(float64) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return func(p float64) time.Duration {
			if len(ds) == 0 {
				return 0
			}
			return ds[int(p*float64(len(ds)-1))]
		}
	}
	ok := len(latencies)
	throughput := 0.0
	if total > 0 {
		throughput = float64(ok) / total.Seconds()
	}
	hitRate := 0.0
	if ok > 0 {
		hitRate = 100 * float64(hits) / float64(ok)
	}
	fmt.Printf("apload: %d ok, %d failed in %s (%.1f runs/s)\n",
		ok, failed, total.Round(time.Millisecond), throughput)
	fmt.Printf("apload: cache hits %d/%d (%.1f%%)\n", hits, ok, hitRate)
	if ok == 0 {
		// No completed runs: the percentile math below would index into
		// empty slices; the counts above already tell the story.
		fmt.Println("apload: no completed runs; skipping latency summary")
	} else {
		q := quantiles(latencies)
		qq := quantiles(queueWaits)
		qe := quantiles(executes)
		fmt.Printf("apload: submit->done latency p50=%s p90=%s p99=%s max=%s\n",
			q(0.50).Round(time.Millisecond), q(0.90).Round(time.Millisecond),
			q(0.99).Round(time.Millisecond), q(1.0).Round(time.Millisecond))
		fmt.Printf("apload: queue-wait          p50=%s p90=%s p99=%s max=%s\n",
			qq(0.50).Round(time.Millisecond), qq(0.90).Round(time.Millisecond),
			qq(0.99).Round(time.Millisecond), qq(1.0).Round(time.Millisecond))
		fmt.Printf("apload: execute             p50=%s p90=%s p99=%s max=%s\n",
			qe(0.50).Round(time.Millisecond), qe(0.90).Round(time.Millisecond),
			qe(0.99).Round(time.Millisecond), qe(1.0).Round(time.Millisecond))
	}
	if serverTotal := queueTotal + execTotal; serverTotal > 0 {
		fmt.Printf("apload: server wall split   queue-wait %.1f%%, execute %.1f%%\n",
			100*float64(queueTotal)/float64(serverTotal),
			100*float64(execTotal)/float64(serverTotal))
	}
	if failed > 0 {
		return fmt.Errorf("%d/%d runs failed", failed, *n)
	}
	return nil
}
