// Command aprouted fronts a fleet of apserved shards: it consistent-hashes
// each submission's canonical spec onto a backend ring, so every repeat of
// a spec lands on the shard whose result cache already holds it, and fails
// over to the next replica in ring order when a shard is down or shedding.
//
// Usage:
//
//	aprouted -addr 127.0.0.1:8090 -backends http://127.0.0.1:9101,http://127.0.0.1:9102
//	aprouted -addr 127.0.0.1:8090 -spawn 3 -workers 1
//
// -backends fronts externally-started apserved processes; -spawn N starts
// N shards in-process on ephemeral ports (instance ids b0..bN-1), which is
// the one-command fleet for local experiments. The two compose: spawned
// shards are appended to the -backends list.
//
// API (client-compatible with a single apserved):
//
//	GET  /healthz                   503 when no backend is healthy
//	GET  /metrics                   ap_router_* counters plus the federated
//	                                fleet view: every shard's snapshot merged
//	                                under ap_fleet_* (counters sum, gauges
//	                                max) and per-shard slices under
//	                                ap_shard_<instance>_*
//	GET  /api/v1/metricsz           the same federation as JSON: router,
//	                                fleet merge, and per-shard snapshots
//	                                from one scrape pass
//	GET  /api/v1/fleet              live fleet status: per-shard health,
//	                                queue/worker saturation, cache hit rate,
//	                                probe age (apload -fleet renders it)
//	POST /api/v1/runs               routed by spec hash, retried on failover
//	GET  /api/v1/runs               fleet-wide listing merged from all shards
//	GET  /api/v1/runs/{id}/trace    the shard's lifecycle trace with this
//	                                router's routing spans spliced in as an
//	                                "aprouted (router)" process
//	GET  /api/v1/runs/{id}[/...]    proxied to the shard owning the id prefix
//
// Every inbound request is stamped with an X-AP-Request-Id (generated
// unless the client provides one) that the router forwards to the shard,
// so one id joins the router's and shard's access logs, the run record,
// and the routing trace for a single client interaction.
//
// The router keeps no run state — all of it lives in the shards — so any
// number of router replicas over the same backend list route identically;
// only the routing traces of recently routed runs are retained in memory
// for the trace splice.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"activepages/internal/fleet"
	"activepages/internal/serve"
)

func main() {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "aprouted:", err)
		os.Exit(1)
	}
}

func realMain() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8090", "router listen address")
		backends = flag.String("backends", "", "comma-separated apserved base URLs")
		spawn    = flag.Int("spawn", 0, "apserved shards to start in-process on ephemeral ports")
		interval = flag.Duration("healthinterval", 2*time.Second, "backend health-probe period")
		workers  = flag.Int("workers", 2, "concurrent runs per spawned shard")
		queue    = flag.Int("queue", 16, "queue depth per spawned shard")
		jobs     = flag.Int("jobs", runtime.NumCPU(), "simulation worker-pool width per run in spawned shards")
		cacheMB  = flag.Int("cachemb", 0, "result cache budget per spawned shard in MiB (0 = default)")
		nocache  = flag.Bool("nocache", false, "disable the result cache in spawned shards")
		logLevel = flag.String("loglevel", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -loglevel: %w", err)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, strings.TrimSuffix(b, "/"))
		}
	}

	var locals []*fleet.LocalBackend
	for i := 0; i < *spawn; i++ {
		lb, err := fleet.StartLocal(serve.Config{
			Workers:      *workers,
			QueueDepth:   *queue,
			JobsPerRun:   *jobs,
			InstanceID:   fmt.Sprintf("b%d", i),
			DisableCache: *nocache,
			CacheBudget:  uint64(*cacheMB) << 20,
			Logger:       logger.With("shard", fmt.Sprintf("b%d", i)),
		})
		if err != nil {
			return err
		}
		logger.Info("shard spawned", "instance", fmt.Sprintf("b%d", i), "url", lb.URL())
		locals = append(locals, lb)
		urls = append(urls, lb.URL())
	}
	if len(urls) == 0 {
		return fmt.Errorf("no backends: pass -backends and/or -spawn")
	}

	rt := fleet.NewRouter(fleet.Config{
		Addr:           *addr,
		Backends:       urls,
		HealthInterval: *interval,
		Logger:         logger,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := rt.ListenAndServe(ctx.Done())
	grace, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, lb := range locals {
		if serr := lb.Stop(grace); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}
