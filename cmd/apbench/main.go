// Command apbench regenerates the tables and figures of "Active Pages: A
// Computation Model for Intelligent Memory" (ISCA 1998) from the simulator
// in this repository.
//
// Usage:
//
//	apbench -experiment all
//	apbench -experiment fig3 [-quick] [-pagebytes 65536] [-jobs 8]
//	apbench -experiment table4 -json
//	apbench -experiment ablations
//
// Experiments: table1 table2 table3 table4 crossover fig3 fig4 fig5 fig8
// fig9 smp ablations all.
//
// Every experiment is a grid of independent simulations executed across
// -jobs worker goroutines (default: one per CPU); the merged output is
// byte-identical to a serial run. -json appends one machine-readable
// metrics snapshot — every machine component's counters summed over all
// simulations of the invocation — after the human-readable tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"activepages/internal/experiments"
	"activepages/internal/radram"
	"activepages/internal/run"
	"activepages/internal/tabler"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run")
		quick      = flag.Bool("quick", false, "use a short problem-size axis")
		pageBytes  = flag.Uint64("pagebytes", experiments.ScaledPageBytes,
			"superpage size (512KiB = paper reference; smaller = scaled mode)")
		regions    = flag.Bool("regions", false, "with fig3: print region classification")
		l2         = flag.Bool("l2", false, "with fig5: sweep the L2 instead of the L1D")
		csvDir     = flag.String("csv", "", "also write each figure as CSV into this directory")
		jobs       = flag.Int("jobs", runtime.NumCPU(), "simulation worker-pool width")
		jsonOut    = flag.Bool("json", false, "append a merged metrics snapshot as JSON")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "apbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "apbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "apbench:", err)
				os.Exit(1)
			}
		}()
	}

	cfg := radram.DefaultConfig().WithPageBytes(*pageBytes)
	points := experiments.DefaultPagePoints()
	if *quick {
		points = experiments.QuickPagePoints()
	}

	r := &run.Runner{Jobs: *jobs}
	if *jsonOut {
		r.WithMetrics()
	}
	if err := runExperiment(r, *experiment, cfg, points, *regions, *l2, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "apbench:", err)
		os.Exit(1)
	}
	if *jsonOut {
		j, err := r.Metrics.Snapshot().JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "apbench:", err)
			os.Exit(1)
		}
		fmt.Printf("\n##### metrics (json) #####\n%s\n", j)
	}
}

// writeCSV saves a figure to dir/name.csv when dir is set, creating the
// parent directories as needed.
func writeCSV(dir, name string, f *tabler.Figure) error {
	if dir == "" {
		return nil
	}
	path := filepath.Join(dir, name+".csv")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

func runExperiment(r *run.Runner, experiment string, cfg radram.Config, points []float64, regions, l2 bool, csvDir string) error {
	out := os.Stdout
	switch experiment {
	case "table1":
		experiments.Table1(cfg).WriteTo(out)
	case "table2":
		experiments.Table2().WriteTo(out)
	case "table3":
		experiments.Table3().WriteTo(out)
	case "table4":
		rows, err := experiments.Table4(r, cfg, 16, points)
		if err != nil {
			return err
		}
		experiments.RenderTable4(rows).WriteTo(out)
	case "fig3", "fig4":
		sweeps, err := experiments.RunAllSweeps(r, cfg, points)
		if err != nil {
			return err
		}
		if experiment == "fig3" {
			f := experiments.Figure3(sweeps)
			f.WriteTo(out)
			if err := writeCSV(csvDir, "fig3", f); err != nil {
				return err
			}
			if regions {
				for _, s := range sweeps {
					fmt.Fprintf(out, "%s regions: %v\n", s.Benchmark, s.Regions())
				}
			}
		} else {
			f := experiments.Figure4(sweeps)
			f.WriteTo(out)
			if err := writeCSV(csvDir, "fig4", f); err != nil {
				return err
			}
		}
	case "fig5":
		level, sizes := "L1D", experiments.DefaultL1Sizes()
		if l2 {
			level, sizes = "L2", experiments.DefaultL2Sizes()
		}
		names := []string{"database", "median-kernel", "median-total", "array", "dynamic-prog"}
		conv, rad, err := experiments.CacheSweep(r, names, cfg, level, sizes, 16)
		if err != nil {
			return err
		}
		conv.WriteTo(out)
		fmt.Fprintln(out)
		rad.WriteTo(out)
		if err := writeCSV(csvDir, "fig5-conventional", conv); err != nil {
			return err
		}
		if err := writeCSV(csvDir, "fig5-radram", rad); err != nil {
			return err
		}
	case "fig8":
		f, err := experiments.MissLatencySweep(r, cfg, experiments.DefaultMissLatencies(), 16)
		if err != nil {
			return err
		}
		f.WriteTo(out)
		if err := writeCSV(csvDir, "fig8", f); err != nil {
			return err
		}
	case "fig9":
		f, err := experiments.LogicSpeedSweep(r, cfg, experiments.DefaultLogicDivisors(), 16)
		if err != nil {
			return err
		}
		f.WriteTo(out)
		if err := writeCSV(csvDir, "fig9", f); err != nil {
			return err
		}
	case "crossover":
		rows, err := experiments.CrossoverStudy(r, cfg, 16, points)
		if err != nil {
			return err
		}
		end := points[len(points)-1]
		experiments.RenderCrossover(rows, end).WriteTo(out)
	case "smp":
		f, err := experiments.SMPStudy(r, cfg, 32, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		f.WriteTo(out)
	case "ablations":
		a1, err := experiments.AblationActivation(r, cfg, 16)
		if err != nil {
			return err
		}
		a1.WriteTo(out)
		a2, err := experiments.AblationInterPage(r, cfg, 16)
		if err != nil {
			return err
		}
		a2.WriteTo(out)
		a3, err := experiments.AblationBind(r, cfg, 16)
		if err != nil {
			return err
		}
		a3.WriteTo(out)
		a4, err := experiments.AblationPageSize(r, 4*1024*1024)
		if err != nil {
			return err
		}
		a4.WriteTo(out)
		a5, err := experiments.AblationMMXWidth(r, cfg, 16)
		if err != nil {
			return err
		}
		a5.WriteTo(out)
		experiments.SwapCost(radram.DefaultConfig()).WriteTo(out)
		experiments.PagingStudy(r, 8, 3500).WriteTo(out)
	case "all":
		for _, e := range []string{"table1", "table2", "table3", "fig3", "fig4",
			"table4", "crossover", "fig5", "fig8", "fig9", "smp", "ablations"} {
			fmt.Fprintf(out, "\n##### %s #####\n", e)
			if err := runExperiment(r, e, cfg, points, regions, l2, csvDir); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}
