// Command apbench regenerates the tables and figures of "Active Pages: A
// Computation Model for Intelligent Memory" (ISCA 1998) from the simulator
// in this repository.
//
// Usage:
//
//	apbench -experiment all
//	apbench -experiment fig3 [-quick] [-pagebytes 65536] [-jobs 8]
//	apbench -experiment table4 -json
//	apbench -experiment ablations
//	apbench -experiment array -quick -json -report
//	apbench -experiment all -quick -trace out.json
//	apbench -experiment backends -quick
//	apbench -experiment array -quick -backend simdram
//
// Experiments: table1 table2 table3 table4 crossover fig3 fig4 fig5 fig8
// fig9 smp ablations backends all — or any single benchmark name (array,
// database, median-kernel, median-total, dynamic-prog, matrix-simplex,
// matrix-boeing, mpeg-mmx), which sweeps that benchmark alone over the
// problem-size axis.
//
// -backend selects the Active-Page compute backend: radram (the default,
// the paper's reconfigurable-logic DRAM), simdram (a bit-serial
// row-parallel in-DRAM SIMD model), or all to run each in turn. Only the
// kernels with bit-serial ports (array, database, median) run on simdram;
// experiments that only make sense on RADram print a skip note there. The
// "backends" experiment renders the three-way conventional/RADram/SIMDRAM
// comparison and the crossover figures.
//
// Every experiment is a grid of independent simulations executed across
// -jobs worker goroutines (default: one per CPU); the merged output is
// byte-identical to a serial run. -json appends one machine-readable
// metrics snapshot — every machine component's counters summed over all
// simulations of the invocation — after the human-readable tables.
// -report appends a bottleneck attribution report: per-benchmark phase
// breakdown (compute / memory stall / Active-Page wait / mediation, plus
// bus and logic occupancy) and latency-histogram quantiles. -trace runs
// one extra traced simulation pair — it contributes nothing to the tables,
// metrics, or report, so all other output is byte-identical with or
// without it — and writes a Chrome trace_event JSON file loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"activepages/internal/experiments"
	"activepages/internal/obs"
	"activepages/internal/radram"
	"activepages/internal/report"
	"activepages/internal/run"
)

func main() {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "apbench:", err)
		os.Exit(1)
	}
}

// realMain carries the whole run so its defers — CPU/heap profile flushes
// — execute on every exit path, including errors; main translates the
// error into the process exit code after they have run.
func realMain() error {
	var (
		experiment = flag.String("experiment", "all", "which experiment or benchmark to run")
		quick      = flag.Bool("quick", false, "use a short problem-size axis")
		pageBytes  = flag.Uint64("pagebytes", experiments.ScaledPageBytes,
			"superpage size (512KiB = paper reference; smaller = scaled mode)")
		backendSel = flag.String("backend", "radram", "compute backend: radram, simdram, or all")
		regions    = flag.Bool("regions", false, "with fig3: print region classification")
		l2         = flag.Bool("l2", false, "with fig5: sweep the L2 instead of the L1D")
		csvDir     = flag.String("csv", "", "also write each figure as CSV into this directory")
		jobs       = flag.Int("jobs", runtime.NumCPU(), "simulation worker-pool width")
		nocheck    = flag.Bool("nocheckpoint", false, "disable checkpoint/branch sweep reuse (A/B timing)")
		jsonOut    = flag.Bool("json", false, "append a merged metrics snapshot as JSON")
		reportOut  = flag.Bool("report", false, "append a bottleneck attribution report")
		traceFile  = flag.String("trace", "", "write a Chrome trace of one traced run to this file")
		traceBench = flag.String("tracebench", "database", "with -trace: benchmark to trace")
		tracePages = flag.Float64("tracepages", 2, "with -trace: problem size in pages")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintf(w, "Usage: %s [flags]\n\n", filepath.Base(os.Args[0]))
		fmt.Fprintf(w, "-experiment accepts a composite experiment:\n  all %s backends\n",
			strings.Join(experiments.All, " "))
		fmt.Fprintf(w, "or a single benchmark name, which sweeps that benchmark alone over\nthe problem-size axis:\n  %s\n\n",
			strings.Join(experiments.BenchmarkNames(), " "))
		fmt.Fprintln(w, "Flags:")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "apbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "apbench:", err)
			}
		}()
	}

	cfg := radram.DefaultConfig().WithPageBytes(*pageBytes)
	points := experiments.DefaultPagePoints()
	if *quick {
		points = experiments.QuickPagePoints()
	}

	r := &run.Runner{Jobs: *jobs}
	if !*nocheck {
		// Checkpoint/branch: sweep points sharing a canonical configuration
		// simulate once and branch from the stored machine state. Output is
		// byte-identical with or without it; -nocheckpoint exists for A/B
		// timing and bisection.
		r.Checkpoints = run.NewCheckpointCache(0)
	}
	if *jsonOut || *reportOut {
		r.WithMetrics()
	}
	opt := experiments.Options{Regions: *regions, L2: *l2, CSVDir: *csvDir, Backend: *backendSel}
	if err := experiments.Dispatch(os.Stdout, r, *experiment, cfg, points, opt); err != nil {
		return err
	}
	if *reportOut {
		fmt.Printf("\n##### report #####\n")
		report.FromGroups(r.Metrics.Groups()).WriteTo(os.Stdout)
	}
	if *jsonOut {
		j, err := r.Metrics.Snapshot().JSON()
		if err != nil {
			return err
		}
		fmt.Printf("\n%s\n%s\n", report.MetricsMarker, j)
	}
	if *traceFile != "" {
		if err := writeTrace(*traceFile, *traceBench, cfg, *tracePages); err != nil {
			return err
		}
	}
	return nil
}

// writeTrace runs one dedicated conventional/RADram pair of the named
// benchmark with simulated-time tracing enabled and exports the combined
// trace as Chrome trace_event JSON. The traced pair is separate from the
// experiment's machines and feeds no metrics collector, so enabling
// -trace changes nothing else about the invocation's output.
func writeTrace(path, bench string, cfg radram.Config, pages float64) error {
	b, err := experiments.BenchmarkByName(bench)
	if err != nil {
		return err
	}
	conv, rad, err := run.NewPair(cfg)
	if err != nil {
		return err
	}
	convTr := obs.NewTracer(0)
	convTr.SetProcess(1, "conventional")
	radTr := obs.NewTracer(0)
	radTr.SetProcess(2, "radram")
	conv.EnableTracing(convTr)
	rad.EnableTracing(radTr)
	if err := b.Run(conv.Machine, pages); err != nil {
		return err
	}
	if err := b.Run(rad.Machine, pages); err != nil {
		return err
	}
	conv.FlushTrace()
	rad.FlushTrace()

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChrome(f, convTr, radTr); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "apbench: wrote %d trace events (%d dropped) to %s\n",
		convTr.Len()+radTr.Len(), convTr.Dropped()+radTr.Dropped(), path)
	return nil
}
