// Command apserved is the Active Pages run-registry daemon: a long-running
// HTTP service that executes apbench experiments on demand and exposes
// live metrics while they run.
//
// Usage:
//
//	apserved -addr 127.0.0.1:8080 -workers 2 -queue 16
//
// API:
//
//	GET  /healthz                   liveness (503 while draining) plus queue
//	                                depth and busy-worker counts, so a fleet
//	                                router's probe doubles as a load report
//	GET  /metrics                   Prometheus text exposition: live service
//	                                metrics, the aggregate of every completed
//	                                run under run_*, and Go process metrics
//	GET  /api/v1/metricsz           the raw metrics snapshot as JSON, for
//	                                exact-merge federation by aprouted
//	POST /api/v1/runs               submit {"experiment":"array","quick":true};
//	                                202 + run JSON, 503 when the queue is full
//	GET  /api/v1/runs               list all runs with per-state counts
//	GET  /api/v1/runs/{id}          one run's lifecycle JSON
//	GET  /api/v1/runs/{id}/output   the run's rendered tables (apbench stdout)
//	GET  /api/v1/runs/{id}/metrics  the run's metrics snapshot JSON
//	GET  /api/v1/runs/{id}/report   the run's bottleneck attribution report
//	GET  /api/v1/runs/{id}/progress live sweep progress, ETA, and event log
//	GET  /api/v1/runs/{id}/trace    the run's wall-clock lifecycle trace as
//	                                Chrome trace_event JSON (open in Perfetto);
//	                                valid mid-run and after completion
//	GET  /debug/pprof/...           Go profiling endpoints (with -pprof)
//
// Completed and failed runs are retained up to -retain entries; beyond the
// cap the oldest terminal runs lose their artifacts (output, metrics,
// trace) but keep a lifecycle tombstone, so memory stays bounded under
// sustained load.
//
// Results are memoized by canonical spec: a submission identical to a
// completed run answers instantly from the content-addressed cache
// (bounded by -cachemb, LRU-evicted), and concurrent identical
// submissions collapse onto one execution. -nocache restores the
// always-recompute behavior for baseline measurements. -instance gives
// the daemon a fleet shard id: run ids become "b0-r000001" so an aprouted
// front can route reads by prefix.
//
// Logs are JSON (log/slog) on stderr: one access line per request and one
// lifecycle line per run transition. Every request gets an
// X-AP-Request-Id — the inbound header's value when a router forwarded
// one, a fresh id otherwise — echoed on the response, written in the
// access line, and recorded on the run it submitted, so one id joins a
// client interaction across the whole fleet. SIGINT/SIGTERM shut down gracefully:
// the listener closes, in-flight runs finish (bounded by -runtimeout), and
// still-queued runs are marked failed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"activepages/internal/serve"
)

func main() {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "apserved:", err)
		os.Exit(1)
	}
}

func realMain() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers    = flag.Int("workers", 2, "concurrent experiment runs")
		queue      = flag.Int("queue", 16, "accepted runs that may wait for a worker")
		runTimeout = flag.Duration("runtimeout", 10*time.Minute, "per-run wall-clock budget")
		jobs       = flag.Int("jobs", runtime.NumCPU(), "simulation worker-pool width inside each run")
		retain     = flag.Int("retain", 256, "completed/failed runs kept with artifacts before eviction")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logLevel   = flag.String("loglevel", "info", "log level: debug, info, warn, error")
		instance   = flag.String("instance", "", "fleet instance id prefixed to run ids (e.g. b0)")
		nocache    = flag.Bool("nocache", false, "disable the content-addressed result cache (always recompute)")
		nocheck    = flag.Bool("nocheckpoint", false, "disable checkpoint/branch sweep reuse across runs (A/B timing)")
		cacheMB    = flag.Int("cachemb", 0, "result cache byte budget in MiB (0 = default 256)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -loglevel: %w", err)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	s := serve.New(serve.Config{
		Addr:               *addr,
		Workers:            *workers,
		QueueDepth:         *queue,
		RunTimeout:         *runTimeout,
		JobsPerRun:         *jobs,
		RetainRuns:         *retain,
		EnablePprof:        *pprofOn,
		InstanceID:         *instance,
		DisableCache:       *nocache,
		DisableCheckpoints: *nocheck,
		CacheBudget:        uint64(*cacheMB) << 20,
		Logger:             logger,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return s.ListenAndServe(ctx)
}
