// Command apasm assembles MSS assembly source (the simulator's
// SimpleScalar-inspired ISA, see internal/isa) into a loadable binary
// image.
//
// Usage:
//
//	apasm -o prog.bin prog.s
//	apasm -list prog.s         # print segments and symbols
//
// The binary format is a simple segment list:
//
//	magic "MSS1" | entry(8) | nseg(4) | { addr(8) len(4) bytes } ...
//	                                   | nsym(4) | { len(2) name addr(8) }
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"activepages/internal/asm"
	"activepages/internal/isa"
)

func main() {
	var (
		out  = flag.String("o", "a.bin", "output file")
		list = flag.Bool("list", false, "print segments and symbols instead of writing")
		dis  = flag.Bool("dis", false, "disassemble (accepts .s source or an MSS1 binary)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: apasm [-o out.bin] [-list] [-dis] source.s|prog.bin")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "apasm:", err)
		os.Exit(1)
	}
	var img *asm.Image
	if len(src) >= 4 && string(src[:4]) == "MSS1" {
		img, err = asm.UnmarshalImage(src)
	} else {
		img, err = asm.Assemble(string(src))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "apasm:", err)
		os.Exit(1)
	}
	if *dis {
		disassemble(img)
		return
	}
	if *list {
		fmt.Printf("entry %#x\n", img.Entry)
		for _, seg := range img.Segments {
			fmt.Printf("segment %#010x  %6d bytes\n", seg.Addr, len(seg.Bytes))
		}
		names := make([]string, 0, len(img.Symbols))
		for n := range img.Symbols {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("symbol  %#010x  %s\n", img.Symbols[n], n)
		}
		return
	}
	if err := os.WriteFile(*out, asm.MarshalImage(img), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "apasm:", err)
		os.Exit(1)
	}
}

// disassemble prints every word of each segment as an instruction when it
// decodes, or as raw data otherwise.
func disassemble(img *asm.Image) {
	for _, seg := range img.Segments {
		fmt.Printf("; segment %#010x (%d bytes)\n", seg.Addr, len(seg.Bytes))
		for i := 0; i+4 <= len(seg.Bytes); i += 4 {
			w := uint32(seg.Bytes[i]) | uint32(seg.Bytes[i+1])<<8 |
				uint32(seg.Bytes[i+2])<<16 | uint32(seg.Bytes[i+3])<<24
			addr := seg.Addr + uint64(i)
			if in, err := isa.Decode(w); err == nil {
				fmt.Printf("%#010x:  %08x  %s\n", addr, w, in)
			} else {
				fmt.Printf("%#010x:  %08x  .word\n", addr, w)
			}
		}
	}
}
