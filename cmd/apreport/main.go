// Command apreport renders and compares apbench metrics snapshots.
//
// Usage:
//
//	apbench -experiment array -quick -json > run.txt
//	apreport run.txt                  # bottleneck attribution of one run
//	apreport old.txt new.txt          # per-metric diff of two runs
//	apreport -all old.txt new.txt     # include unchanged metrics
//	apreport -tol 0 base.txt new.txt  # CI gate: exit 1 on any change
//
// Each input may be either a raw metrics-snapshot JSON object or full
// apbench stdout (apreport finds the JSON after the "##### metrics (json)
// #####" marker). With one input it prints the phase breakdown and latency
// histograms of that run; with two it prints every metric whose value
// changed between them. A file that cannot be parsed is a hard error, so
// CI can use apreport as a round-trip check on apbench's JSON output.
//
// -tol turns the two-file diff into a regression gate: every metric of the
// baseline (first file) whose relative change in the second file exceeds
// the tolerance percentage is listed, and the exit status is nonzero when
// any metric is out of tolerance. Metrics present only in the new file —
// added instrumentation — never trip the gate. The simulator is
// deterministic, so -tol 0 pins the metrics trajectory exactly.
package main

import (
	"flag"
	"fmt"
	"os"

	"activepages/internal/obs"
	"activepages/internal/report"
)

func main() {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "apreport:", err)
		os.Exit(1)
	}
}

func realMain() error {
	all := flag.Bool("all", false, "with two files: include unchanged metrics in the diff")
	tol := flag.Float64("tol", -1, "with two files: exit nonzero when any baseline metric changed by more than this percentage (negative disables)")
	flag.Parse()

	args := flag.Args()
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("usage: apreport [-all] metrics-file [metrics-file]")
	}
	snaps := make([]obs.Snapshot, len(args))
	for i, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if snaps[i], err = report.ParseMetrics(data); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}

	if len(snaps) == 1 {
		// A single apbench snapshot is one big group: attribute it whole.
		if b := report.BackendOf(snaps[0]); b != "" {
			fmt.Printf("backend: %s\n", b)
		}
		r := report.FromGroups(map[string]obs.Snapshot{args[0]: snaps[0]})
		_, err := r.WriteTo(os.Stdout)
		return err
	}
	// Metrics namespaces are per backend, so diffing runs from different
	// backends would compare disjoint key sets and render a misleading
	// (near-empty) diff; refuse instead of reporting nothing changed.
	oldBk, newBk := report.BackendOf(snaps[0]), report.BackendOf(snaps[1])
	if oldBk != "" && newBk != "" && oldBk != newBk {
		return fmt.Errorf("backend mismatch: %s is a %s run but %s is a %s run; re-run apbench with the same -backend to compare",
			args[0], oldBk, args[1], newBk)
	}
	if bk := oldBk; bk != "" || newBk != "" {
		if bk == "" {
			bk = newBk
		}
		fmt.Printf("backend: %s\n", bk)
	}
	if _, err := report.Diff(snaps[0], snaps[1], !*all).WriteTo(os.Stdout); err != nil {
		return err
	}
	if *tol >= 0 {
		if v := report.OutOfTolerance(snaps[0], snaps[1], *tol); len(v) > 0 {
			fmt.Printf("\n%d metric(s) out of tolerance (%g%%):\n", len(v), *tol)
			for _, x := range v {
				fmt.Printf("  %s\n", x)
			}
			return fmt.Errorf("metrics regressed beyond -tol %g", *tol)
		}
		fmt.Printf("\nall baseline metrics within tolerance (%g%%)\n", *tol)
	}
	return nil
}
