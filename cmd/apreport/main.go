// Command apreport renders and compares apbench metrics snapshots.
//
// Usage:
//
//	apbench -experiment array -quick -json > run.txt
//	apreport run.txt                  # bottleneck attribution of one run
//	apreport old.txt new.txt          # per-metric diff of two runs
//	apreport -all old.txt new.txt     # include unchanged metrics
//
// Each input may be either a raw metrics-snapshot JSON object or full
// apbench stdout (apreport finds the JSON after the "##### metrics (json)
// #####" marker). With one input it prints the phase breakdown and latency
// histograms of that run; with two it prints every metric whose value
// changed between them. A file that cannot be parsed is a hard error, so
// CI can use apreport as a round-trip check on apbench's JSON output.
package main

import (
	"flag"
	"fmt"
	"os"

	"activepages/internal/obs"
	"activepages/internal/report"
)

func main() {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "apreport:", err)
		os.Exit(1)
	}
}

func realMain() error {
	all := flag.Bool("all", false, "with two files: include unchanged metrics in the diff")
	flag.Parse()

	args := flag.Args()
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("usage: apreport [-all] metrics-file [metrics-file]")
	}
	snaps := make([]obs.Snapshot, len(args))
	for i, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if snaps[i], err = report.ParseMetrics(data); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}

	if len(snaps) == 1 {
		// A single apbench snapshot is one big group: attribute it whole.
		r := report.FromGroups(map[string]obs.Snapshot{args[0]: snaps[0]})
		_, err := r.WriteTo(os.Stdout)
		return err
	}
	_, err := report.Diff(snaps[0], snaps[1], !*all).WriteTo(os.Stdout)
	return err
}
