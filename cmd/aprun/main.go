// Command aprun executes an assembled MSS binary (or assembles and runs a
// .s source directly) on the simulated in-order core with the Table 1
// memory hierarchy, then prints program output and execution statistics.
//
// Usage:
//
//	aprun prog.bin
//	aprun -maxinstr 1000000 prog.s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"activepages/internal/asm"
	"activepages/internal/cpu"
	"activepages/internal/memsys"
	"activepages/internal/run"
)

func main() {
	var (
		maxInstr = flag.Uint64("maxinstr", 100_000_000, "instruction budget")
		stats    = flag.Bool("stats", true, "print execution statistics")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: aprun [-maxinstr N] prog.bin|prog.s")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "aprun:", err)
		os.Exit(1)
	}

	var img *asm.Image
	if strings.HasSuffix(flag.Arg(0), ".s") {
		img, err = asm.Assemble(string(data))
	} else {
		img, err = asm.UnmarshalImage(data)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aprun:", err)
		os.Exit(1)
	}

	isa := run.NewISA(cpu.DefaultConfig(), memsys.DefaultConfig())
	core, hier := isa.Core, isa.Hier
	core.Load(img)
	n, err := core.Run(*maxInstr)
	os.Stdout.Write(core.Output.Bytes())
	if err != nil {
		fmt.Fprintln(os.Stderr, "aprun:", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "\ninstructions  %d\n", n)
		fmt.Fprintf(os.Stderr, "sim time      %v\n", core.Now())
		fmt.Fprintf(os.Stderr, "IPC           %.3f\n", core.IPC())
		fmt.Fprintf(os.Stderr, "loads/stores  %d/%d\n", core.Stats.Loads, core.Stats.Stores)
		fmt.Fprintf(os.Stderr, "L1D miss rate %.2f%%\n", 100*hier.L1D.Stats.MissRate())
		fmt.Fprintf(os.Stderr, "compute/mem   %v / %v\n", core.Stats.ComputeTime, core.Stats.MemTime)
	}
}
