// Command apsim runs one application kernel on one machine configuration
// and prints the timing breakdown: conventional versus RADram execution,
// speedup, and the processor's time ledger.
//
// Usage:
//
//	apsim -app database -pages 16
//	apsim -app matrix-boeing -pages 64 -pagebytes 524288 -logicdiv 20 -missns 100
package main

import (
	"flag"
	"fmt"
	"os"

	"activepages/internal/experiments"
	"activepages/internal/radram"
	"activepages/internal/run"
	"activepages/internal/sim"
)

func main() {
	var (
		app       = flag.String("app", "database", "benchmark name (see apbench -experiment table2)")
		pages     = flag.Float64("pages", 16, "problem size in superpages")
		pageBytes = flag.Uint64("pagebytes", experiments.ScaledPageBytes, "superpage size in bytes")
		logicDiv  = flag.Uint64("logicdiv", 10, "CPU-clock/logic-clock divisor")
		missNs    = flag.Uint64("missns", 50, "cache-miss (DRAM access) latency in ns")
		l1d       = flag.Uint64("l1d", 64*1024, "L1 data cache bytes")
		l2        = flag.Uint64("l2", 1024*1024, "L2 cache bytes")
	)
	flag.Parse()

	b, err := experiments.BenchmarkByName(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apsim:", err)
		os.Exit(1)
	}
	cfg := radram.DefaultConfig().
		WithPageBytes(*pageBytes).
		WithLogicDivisor(*logicDiv).
		WithMissLatency(sim.Duration(*missNs) * sim.Nanosecond).
		WithL1D(*l1d).
		WithL2(*l2)

	conv, rad, err := run.NewPair(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apsim:", err)
		os.Exit(1)
	}
	if err := b.Run(conv.Machine, *pages); err != nil {
		fmt.Fprintln(os.Stderr, "apsim: conventional:", err)
		os.Exit(1)
	}
	if err := b.Run(rad.Machine, *pages); err != nil {
		fmt.Fprintln(os.Stderr, "apsim: radram:", err)
		os.Exit(1)
	}

	fmt.Printf("benchmark      %s (%s)\n", b.Name(), b.Partitioning())
	fmt.Printf("problem size   %g pages x %d KB\n", *pages, *pageBytes/1024)
	fmt.Printf("conventional   %v\n", conv.Elapsed())
	fmt.Printf("radram         %v\n", rad.Elapsed())
	fmt.Printf("speedup        %.2fx\n", float64(conv.Elapsed())/float64(rad.Elapsed()))
	fmt.Println()

	cs, rs := conv.CPU.Stats, rad.CPU.Stats
	fmt.Println("processor ledger        conventional      radram")
	fmt.Printf("  compute               %-14v    %v\n", cs.ComputeTime, rs.ComputeTime)
	fmt.Printf("  memory stall          %-14v    %v\n", cs.MemStallTime, rs.MemStallTime)
	fmt.Printf("  non-overlap (AP wait) %-14v    %v\n", cs.NonOverlapTime, rs.NonOverlapTime)
	fmt.Printf("  mediation             %-14v    %v\n", cs.MediationTime, rs.MediationTime)
	fmt.Printf("  instructions          %-14d    %d\n", cs.Instructions, rs.Instructions)
	fmt.Println()
	fmt.Printf("radram activations     %d\n", rad.AP.Stats.Activations)
	fmt.Printf("radram logic busy      %v\n", rad.AP.Stats.LogicBusy)
	fmt.Printf("inter-page transfers   %d (%d bytes)\n",
		rad.AP.Stats.InterPageTransfers, rad.AP.Stats.InterPageBytes)
	fmt.Printf("stalled on AP          %.1f%%\n", 100*rs.NonOverlapFraction())
}
