// Sparsesolver: the compare-gather-compute pattern of the paper's sparse-
// matrix study (Section 5.2) on finite-element and Simplex workloads.
//
// Active Pages walk the index vectors and gather matching operand pairs
// into cache-line-sized blocks; the processor reads only the packed
// "useful" data and multiplies at peak floating-point rate.
//
// Run: go run ./examples/sparsesolver
package main

import (
	"fmt"
	"log"

	"activepages/internal/apps/matrix"
	"activepages/internal/radram"
	"activepages/internal/run"
)

func main() {
	cfg := radram.DefaultConfig().WithPageBytes(64 * 1024)
	const pages = 32

	for _, v := range []matrix.Variant{matrix.Boeing, matrix.Simplex} {
		b := matrix.Benchmark{Variant: v}
		conv, rad, err := run.NewPair(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := b.Run(conv.Machine, pages); err != nil {
			log.Fatal(err)
		}
		if err := b.Run(rad.Machine, pages); err != nil {
			log.Fatal(err)
		}
		rs := rad.CPU.Stats
		fmt.Printf("%s (verified sparse dot products):\n", b.Name())
		fmt.Printf("  conventional merge-walk: %v\n", conv.Elapsed())
		fmt.Printf("  RADram compare-gather:   %v\n", rad.Elapsed())
		fmt.Printf("  speedup:                 %.2fx\n",
			float64(conv.Elapsed())/float64(rad.Elapsed()))
		fmt.Printf("  FP ops on processor:     %d (at %.0f MFLOPS effective)\n",
			rs.FPOps, float64(rs.FPOps)/rad.Elapsed().Seconds()/1e6)
		fmt.Printf("  stalled on pages:        %.1f%% (saturated => processor-bound)\n\n",
			100*rs.NonOverlapFraction())
	}
}
