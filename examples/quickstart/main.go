// Quickstart: the Active Pages programming model in one file.
//
// This example follows Section 2 of the paper directly: allocate a group
// of Active Pages (AP_alloc), bind a function set (AP_bind), activate the
// pages with memory-mapped writes, poll the synchronization variable, and
// read back results — here, counting occurrences of a byte across a large
// buffer, with every page scanning its share in parallel.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"activepages/internal/core"
	"activepages/internal/logic"
	"activepages/internal/radram"
	"activepages/internal/run"
)

// countFn is the page circuit: count bytes equal to the key and leave the
// result in the page's synchronization area.
type countFn struct{}

func (countFn) Name() string { return "count-byte" }

// Design describes the circuit for the synthesis estimator; the Active-
// Page system checks it against the 256-LE page budget at AP_bind.
func (countFn) Design() *logic.Design {
	d := logic.NewDesign("count-byte")
	d.OnPath(logic.Primitive{Kind: logic.CompareEq, Width: 8, Name: "key-match"})
	d.OnPath(logic.Primitive{Kind: logic.Counter, Width: 24, Name: "count"})
	d.Off(logic.Primitive{Kind: logic.MemPort, Name: "subarray-port"})
	d.Off(logic.Primitive{Kind: logic.FSM, Ways: 4, Name: "control"})
	d.Off(logic.Primitive{Kind: logic.Counter, Width: 20, Name: "scan-addr"})
	return d
}

func (countFn) Run(ctx *core.PageContext) (core.Result, error) {
	start, n, key := ctx.Args[0], ctx.Args[1], byte(ctx.Args[2])
	var count uint32
	buf := make([]byte, n)
	ctx.Read(start, buf)
	for _, b := range buf {
		if b == key {
			count++
		}
	}
	ctx.WriteU32(16, count) // synchronization area: result slot
	// One byte per logic cycle through the scan datapath.
	return ctx.Finish(n)
}

func main() {
	// A workstation with a RADram memory system at the paper's Table 1
	// reference parameters (1 GHz CPU, 100 MHz logic, 512 KB pages).
	m, err := run.New(radram.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// AP_alloc: four pages in one group.
	const base = 16 * 1024 * 1024
	pages, err := m.AP.AllocRange("demo", base, 4)
	if err != nil {
		log.Fatal(err)
	}

	// Fill the pages with data (here via the simulated processor, so the
	// writes are timed like any application store).
	const dataOff, dataLen = 256, 128 * 1024
	for _, p := range pages {
		for off := uint64(0); off < dataLen; off += 4 {
			m.CPU.StoreU32(p.Base+dataOff+off, 0x41424344) // "DCBA"
		}
	}

	// AP_bind: associate the function set with the group.
	if err := m.AP.Bind("demo", countFn{}); err != nil {
		log.Fatal(err)
	}

	// Activate every page: count 'A' bytes in its share.
	for _, p := range pages {
		if err := m.AP.Activate(p, "count-byte", dataOff, dataLen, 'A'); err != nil {
			log.Fatal(err)
		}
	}

	// Poll the synchronization variables and summarize.
	total := uint32(0)
	for _, p := range pages {
		m.AP.Wait(p)
		total += m.CPU.UncachedLoadU32(p.Base + 16)
	}

	fmt.Printf("counted %d 'A' bytes across %d pages\n", total, len(pages))
	fmt.Printf("simulated time: %v\n", m.Elapsed())
	fmt.Printf("processor stalled on pages: %.1f%% of time\n",
		100*m.CPU.Stats.NonOverlapFraction())
	report := logic.Synthesize(countFn{}.Design())
	fmt.Printf("circuit: %d LEs, %.1f ns critical path, %.1f KB bitstream\n",
		report.LEs, report.SpeedNs, report.CodeKB())
}
