// Stlarray: the paper's STL array template (Section 5.1) — one interface,
// two memory systems. The same operation sequence runs against the
// conventional flat-array backend and the Active-Page backend, including
// the further STL operations the paper names (accumulate, partial_sum,
// adjacent_difference).
//
// Run: go run ./examples/stlarray
package main

import (
	"fmt"
	"log"

	"activepages/internal/apps/array"
	"activepages/internal/radram"
	"activepages/internal/run"
)

func main() {
	cfg := radram.DefaultConfig().WithPageBytes(64 * 1024)
	const n = 200_000 // ~12 superpages of 32-bit elements

	conv, rad, err := run.NewPair(cfg)
	if err != nil {
		log.Fatal(err)
	}
	c, err := array.NewConventional(conv.Machine, n)
	if err != nil {
		log.Fatal(err)
	}
	a, err := array.NewActive(rad.Machine, n)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's primitives: inserts and deletes shift the dense array;
	// pages shift their portions in parallel while the processor performs
	// the cross-page moves.
	for _, impl := range []array.Array{c, a} {
		if err := impl.Insert(10, 424242); err != nil {
			log.Fatal(err)
		}
		if err := impl.Delete(n / 2); err != nil {
			log.Fatal(err)
		}
	}
	count1, _ := c.Count(424242)
	count2, _ := a.Count(424242)
	fmt.Printf("count(424242): conventional=%d active=%d\n", count1, count2)

	// The further STL operations of Section 5.1.
	s1, _ := c.Accumulate()
	s2, _ := a.Accumulate()
	fmt.Printf("accumulate:    conventional=%d active=%d\n", s1, s2)
	if s1 != s2 {
		log.Fatal("backends disagree")
	}
	if err := c.AdjacentDifference(); err != nil {
		log.Fatal(err)
	}
	if err := a.AdjacentDifference(); err != nil {
		log.Fatal(err)
	}
	if c.Get(1234) != a.Get(1234) {
		log.Fatal("adjacent_difference backends disagree")
	}

	fmt.Printf("\nconventional system time: %v\n", conv.Elapsed())
	fmt.Printf("RADram system time:       %v\n", rad.Elapsed())
	fmt.Printf("speedup:                  %.1fx\n",
		float64(conv.Elapsed())/float64(rad.Elapsed()))
	fmt.Printf("page activations:         %d (re-binds: %d — the op classes\n",
		rad.AP.Stats.Activations, rad.AP.Stats.Binds)
	fmt.Println("                          share one 256-LE budget, so the array")
	fmt.Println("                          class re-binds between operation types)")
}
