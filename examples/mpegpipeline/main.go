// Mpegpipeline: the full MPEG partitioning the paper lays out for future
// work (Section 5.2) — "the processor will be responsible for the Discrete
// Cosine Transform (DCT), while the RADram system will handle motion
// detection, application of motion correction matrices, run length
// encoding and decoding (RLE), and Huffman encoding and decoding."
//
// Every memory-side stage below runs in Active Pages and is verified
// against a host reference; the processor builds the Huffman table (the
// small, irregular computation) and dispatches everything else.
//
// Run: go run ./examples/mpegpipeline
package main

import (
	"fmt"
	"log"

	"activepages/internal/apps/mpeg"
	"activepages/internal/radram"
	"activepages/internal/run"
	"activepages/internal/workload"
)

func main() {
	cfg := radram.DefaultConfig().WithPageBytes(64 * 1024)

	// Stage 1: motion detection. Pages sweep the +/-4 pixel search window
	// for every 8x8 block in parallel.
	m1 := run.MustNew(cfg)
	ref, cur := mpeg.MotionFrame(42, 128)
	vectors, err := mpeg.RunMotion(m1.Machine, ref, cur, 128)
	if err != nil {
		log.Fatal(err)
	}
	hist := map[[2]int8]int{}
	for _, v := range vectors {
		hist[[2]int8{v.DX, v.DY}]++
	}
	best, n := [2]int8{}, 0
	for k, c := range hist {
		if c > n {
			best, n = k, c
		}
	}
	fmt.Printf("motion detection:   %d blocks, dominant vector (%d,%d) on %d blocks, %v\n",
		len(vectors), best[0], best[1], n, m1.Elapsed())

	// Stage 2: motion-correction application (wide MMX saturating adds).
	m2 := run.MustNew(cfg)
	if err := (mpeg.Benchmark{}).Run(m2.Machine, 8); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correction (MMX):   8 pages of P/B-frame corrections, %v\n", m2.Elapsed())

	// Stage 3: run-length encoding of the (mostly zero) quantized data.
	m3 := run.MustNew(cfg)
	frame := workload.NewMPEGFrame(42, 600)
	quantized := make([]int16, len(frame.Reference))
	for i, v := range frame.Reference {
		quantized[i] = v / 64 // heavy quantization: long zero runs
	}
	enc, err := mpeg.RunRLE(m3.Machine, &workload.MPEGFrame{
		Blocks: frame.Blocks, Reference: quantized, Correction: frame.Correction,
	})
	if err != nil {
		log.Fatal(err)
	}
	pairs := 0
	for _, e := range enc {
		pairs += len(e.Runs)
	}
	fmt.Printf("RLE in memory:      %d samples -> %d run pairs (%.1fx), %v\n",
		len(quantized), pairs, float64(len(quantized))/float64(pairs), m3.Elapsed())

	// Stage 4: Huffman. The processor builds the canonical table; pages
	// bit-pack in parallel.
	m4 := run.MustNew(cfg)
	bytesIn := make([]byte, len(quantized))
	for i, v := range quantized {
		bytesIn[i] = byte(v)
	}
	table, results, err := mpeg.RunHuffman(m4.Machine, bytesIn)
	if err != nil {
		log.Fatal(err)
	}
	var bits uint64
	for _, r := range results {
		bits += r.Bits
	}
	// Verify the first page decodes.
	back, err := mpeg.HuffmanDecodeHost(&table, results[0].Stream, results[0].Symbols)
	if err != nil {
		log.Fatal(err)
	}
	for i := range back {
		if back[i] != bytesIn[i] {
			log.Fatal("huffman decode mismatch")
		}
	}
	fmt.Printf("Huffman in memory:  %d bytes -> %d bits (%.2f bits/symbol), %v\n",
		len(bytesIn), bits, float64(bits)/float64(len(bytesIn)), m4.Elapsed())
}
