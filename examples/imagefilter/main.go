// Imagefilter: median-filter an image on RADram versus a conventional
// memory system — the paper's image-processing study (Section 5.1) as an
// application.
//
// Run: go run ./examples/imagefilter
package main

import (
	"fmt"
	"log"

	"activepages/internal/apps/median"
	"activepages/internal/radram"
	"activepages/internal/run"
)

func main() {
	// Scaled pages keep the example snappy; pass 512 KB pages for the
	// paper's full-size configuration.
	cfg := radram.DefaultConfig().WithPageBytes(64 * 1024)
	const pages = 24 // image sized to 24 superpages

	conv, rad, err := run.NewPair(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := (median.Benchmark{}).Run(conv.Machine, pages); err != nil {
		log.Fatal(err)
	}
	if err := (median.Benchmark{}).Run(rad.Machine, pages); err != nil {
		log.Fatal(err)
	}

	fmt.Println("3x3 median filter (verified against a host-side reference):")
	fmt.Printf("  conventional system: %v\n", conv.Elapsed())
	fmt.Printf("  RADram system:       %v  (%d pages filtering in parallel)\n",
		rad.Elapsed(), rad.AP.Stats.Activations)
	fmt.Printf("  speedup:             %.1fx\n",
		float64(conv.Elapsed())/float64(rad.Elapsed()))
	fmt.Printf("  conventional L1D miss rate: %.1f%%\n",
		100*conv.Hier.L1D.Stats.MissRate())
	fmt.Printf("  logic busy per page:        %v\n",
		rad.AP.Stats.LogicBusy/24)
}
