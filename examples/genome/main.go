// Genome: compare two DNA sequences with the wavefront dynamic-programming
// Active Pages of the paper's largest-common-subsequence study.
//
// The score table is striped across pages; each page's circuit fills its
// strip one cell per logic cycle, consuming the previous strip's border
// through processor-mediated inter-page references. Backtracking runs on
// the processor.
//
// Run: go run ./examples/genome
package main

import (
	"fmt"
	"log"

	"activepages/internal/apps/lcs"
	"activepages/internal/radram"
	"activepages/internal/run"
	"activepages/internal/workload"
)

func main() {
	cfg := radram.DefaultConfig().WithPageBytes(64 * 1024)
	const pages = 16

	// Peek at the kind of data the study uses.
	a := workload.DNA(11, 40)
	b := workload.RelatedDNA(12, a, 20)
	fmt.Printf("sequence A: %s...\n", a[:32])
	fmt.Printf("sequence B: %s...\n", b[:min(32, len(b))])
	fmt.Printf("LCS length of the 40-mer pair: %d\n\n", workload.LCSReference(a, b))

	conv, rad, err := run.NewPair(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := (lcs.Benchmark{}).Run(conv.Machine, pages); err != nil {
		log.Fatal(err)
	}
	if err := (lcs.Benchmark{}).Run(rad.Machine, pages); err != nil {
		log.Fatal(err)
	}

	fmt.Println("full dynamic-programming comparison (verified):")
	fmt.Printf("  conventional fill+backtrack: %v\n", conv.Elapsed())
	fmt.Printf("  RADram wavefront:            %v\n", rad.Elapsed())
	fmt.Printf("  speedup:                     %.1fx\n",
		float64(conv.Elapsed())/float64(rad.Elapsed()))
	fmt.Printf("  inter-page border transfers: %d (%d KB, processor-mediated)\n",
		rad.AP.Stats.InterPageTransfers, rad.AP.Stats.InterPageBytes/1024)
	fmt.Printf("  mediation time billed:       %v\n", rad.CPU.Stats.MediationTime)
}
